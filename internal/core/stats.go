package core

import (
	"repro/internal/storage/colstore"
)

// TableStats is a point-in-time statistics snapshot of one dual-format
// table, the stable surface the SQL planner's join orderer reads. It
// folds live row counts (delta included) with the column store's
// per-segment zone summaries and dictionaries; the segment list is an
// immutable snapshot, so a TableStats stays consistent for the duration
// of one planning pass regardless of concurrent merges.
type TableStats struct {
	// Name is the table name.
	Name string
	// Rows is the live row estimate: cold physical rows minus committed
	// deletes, plus live delta rows.
	Rows int
	// ColdRows is the physical column-store row count (deletes included).
	ColdRows int
	// DeltaRows is the live row-store count.
	DeltaRows int

	segs []*colstore.Segment
}

// TableStats snapshots the table's statistics for one planning pass.
func (t *Table) TableStats() TableStats {
	segs := t.cold.Segments()
	cold, deleted := 0, 0
	for _, s := range segs {
		cold += s.NumRows()
		deleted += s.DeletedRows()
	}
	delta := t.delta.LiveCount()
	live := cold - deleted + delta
	if live < 0 {
		live = 0
	}
	return TableStats{Name: t.name, Rows: live, ColdRows: cold, DeltaRows: delta, segs: segs}
}

// PredSelectivity estimates the fraction of the table's rows matching p,
// weighting each segment's estimate by its row count. Delta rows carry
// no summaries, so they inherit the cold estimate when cold rows exist
// and the operator default otherwise — which keeps estimates usable on
// freshly loaded (unmerged) tables.
func (ts TableStats) PredSelectivity(p colstore.Predicate) float64 {
	coldRows := 0
	weighted := 0.0
	for _, s := range ts.segs {
		coldRows += s.NumRows()
		weighted += float64(s.NumRows()) * s.SelectivityEstimate(p)
	}
	if coldRows == 0 {
		return colstore.DefaultSelectivity(p.Op)
	}
	return weighted / float64(coldRows)
}

// ColumnDistinct estimates the distinct-value count of column ci across
// the table (0 = unknown). Per-segment dictionary sizes are summed —
// segments merged at different times overlap in values, so this
// overestimates, which is the safe direction for join-output estimates
// — and capped by the live row count.
func (ts TableStats) ColumnDistinct(ci int) int {
	total := 0
	known := false
	for _, s := range ts.segs {
		if d, ok := s.ColumnDistinct(ci); ok {
			total += d
			known = true
		}
	}
	if !known {
		return 0
	}
	if total > ts.Rows {
		total = ts.Rows
	}
	if total < 1 {
		total = 1
	}
	return total
}
