package core

import (
	"sync"
	"time"

	"repro/internal/storage/colstore"
)

// MergeResult reports what a delta-merge did.
type MergeResult struct {
	// Merged is the number of rows moved into the new segment.
	Merged int
	// MergeTS is the snapshot the segment represents.
	MergeTS uint64
	// Compacted is the number of old segments rewritten.
	Compacted int
	// Waited is how long the merge waited for writer quiescence.
	Waited time.Duration
}

// Merge runs a delta-merge on the named table: it quiesces writers
// (HANA's "delta switch"), encodes every row committed in the delta into
// a new compressed column segment carrying per-row insert timestamps,
// installs the segment and truncates the delta atomically with respect
// to scans, and opportunistically compacts old segments with many
// deletions.
//
// Readers are never blocked (they hold storageMu only; the switch itself
// is brief). New writer transactions stall for the merge duration;
// in-flight writers run to completion first.
func (e *Engine) Merge(table string) (MergeResult, error) {
	tbl, err := e.Table(table)
	if err != nil {
		return MergeResult{}, err
	}
	return e.mergeTable(tbl), nil
}

func (e *Engine) mergeTable(tbl *Table) MergeResult {
	// One merge at a time engine-wide: prevents writer/merge cycles
	// across tables (a writer blocked on table B's gate while counted in
	// table A's activeWriters can only happen if B is merging; with a
	// global merge lock, A's merge implies B is not merging).
	e.mergeMu.Lock()
	defer e.mergeMu.Unlock()

	var res MergeResult
	start := time.Now()

	// 1. Gate new writers; wait for in-flight writers to finish.
	tbl.gate.Lock()
	defer tbl.gate.Unlock()
	for tbl.activeWriters.Load() != 0 {
		time.Sleep(100 * time.Microsecond)
	}
	res.Waited = time.Since(start)

	// 2. Choose the merge snapshot. With writers quiesced, every version
	// in the delta is committed, and all begin/end stamps are <= mergeTS.
	mergeTS := e.oracle.Now()
	res.MergeTS = mergeTS

	// 3. Collect the delta's visible rows with their commit timestamps
	// and encode the new segment.
	rows, begins := tbl.delta.CollectVersionsAt(mergeTS)
	if len(rows) > 0 {
		b := colstore.NewBuilder(tbl.schema, mergeTS)
		for i, r := range rows {
			b.AddVersioned(r, begins[i])
		}
		seg := b.Build()

		// 4. Install the segment and truncate the delta atomically with
		// respect to scans.
		tbl.storageMu.Lock()
		tbl.cold.AddSegment(seg)
		tbl.delta.TruncateMerged(mergeTS, e.oracle.Watermark())
		tbl.storageMu.Unlock()
		res.Merged = len(rows)
	}

	// 5. Compact heavily-deleted old segments (rewrites exclude rows
	// dead below the watermark; scans are fenced by storageMu inside).
	tbl.storageMu.Lock()
	res.Compacted = tbl.cold.Compact(e.oracle.Watermark())
	tbl.storageMu.Unlock()

	tbl.merges.Add(1)
	return res
}

// AutoMergeAll merges every table whose delta exceeds the configured
// threshold; it returns the number of tables merged. Call it from a
// background ticker for HANA-style automatic delta management.
func (e *Engine) AutoMergeAll() int {
	merged := 0
	for _, name := range e.Tables() {
		tbl, err := e.Table(name)
		if err != nil {
			continue
		}
		if tbl.DeltaRows() >= e.opts.MergeThreshold {
			e.mergeTable(tbl)
			merged++
		}
	}
	return merged
}

// StartAutoMerge runs AutoMergeAll on an interval in a background
// daemon. The returned stop function halts the daemon and waits for an
// in-flight merge pass to finish; it is idempotent. Engine.Close also
// stops and awaits every auto-merge daemon, so callers that close the
// engine need not call stop themselves.
//
//oadb:allow-ctxscan daemon lifetime is engine-scoped by design: the stop func and Engine.Close are the cancellation surface
func (e *Engine) StartAutoMerge(interval time.Duration) (stop func()) {
	ch := make(chan struct{})
	e.daemonMu.Lock()
	e.daemonStop = append(e.daemonStop, ch)
	e.daemonMu.Unlock()
	e.daemonWG.Add(1)
	go func() {
		defer e.daemonWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ch:
				return
			case <-ticker.C:
				e.AutoMergeAll()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			e.daemonMu.Lock()
			for i, s := range e.daemonStop {
				if s == ch {
					e.daemonStop = append(e.daemonStop[:i], e.daemonStop[i+1:]...)
					close(ch)
					break
				}
			}
			e.daemonMu.Unlock()
		})
	}
}
