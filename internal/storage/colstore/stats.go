package colstore

import (
	"repro/internal/types"
)

// This file is the statistics surface the SQL planner's join orderer
// reads: per-segment selectivity estimates derived from the structures
// the scan already maintains — segment-level zone summaries (min/max/
// null-count) and the order-preserving dictionaries — plus distinct-
// count probes for join-output estimation. Everything here is an
// ESTIMATE: it must be cheap (no row access, only summaries and
// dictionary binary searches) and deterministic, never exact.

// DefaultSelectivity is the estimate used when nothing is known about a
// predicate's match fraction: an unbound `?` parameter, a column with
// no summary, or an empty store. The values follow the classic System R
// defaults (equality selective, ranges a third, null tests rare).
func DefaultSelectivity(op Op) float64 {
	switch op {
	case OpEq:
		return 0.1
	case OpNe:
		return 0.9
	case OpIsNull:
		return 0.1
	case OpIsNotNull:
		return 0.9
	default: // ranges
		return 1.0 / 3.0
	}
}

// SelectivityEstimate returns the estimated fraction of this segment's
// physical rows matching p, in [0, 1]:
//
//   - IS [NOT] NULL comes exactly from the summary null count.
//   - Dictionary-encoded columns (strings and low-cardinality ints) use
//     the sorted dictionary's LowerBound/UpperBound code range: the
//     matched code range width over the dictionary size, assuming
//     distinct values are uniformly frequent. An equality literal
//     absent from the dictionary is exactly zero.
//   - Frame-of-reference ints and floats interpolate range predicates
//     linearly over the summary [min, max] span; equality assumes
//     uniform distribution over the span's distinct-value estimate.
//
// Comparison estimates are scaled by the non-null fraction (NULL never
// matches a comparison).
func (s *Segment) SelectivityEstimate(p Predicate) float64 {
	if s.n == 0 {
		return 0
	}
	z := s.summary[p.Col]
	rows := float64(z.Rows)
	nullFrac := float64(z.NullCount) / rows
	switch p.Op {
	case OpIsNull:
		return nullFrac
	case OpIsNotNull:
		return 1 - nullFrac
	}
	if p.Val.Null {
		return DefaultSelectivity(p.Op) * (1 - nullFrac)
	}
	if z.AllNull() {
		return 0
	}
	if !zoneCanMatch(p, z) {
		return 0
	}
	notNull := 1 - nullFrac
	switch c := s.cols[p.Col].(type) {
	case *stringColumn:
		if p.Val.Typ == types.String {
			return dictSelectivity(float64(c.dict.Size()), codeRangeWidth(c.dict, p.Op, p.Val.S)) * notNull
		}
	case *intDictColumn:
		if p.Val.Typ == types.Int64 {
			return dictSelectivity(float64(c.dict.Size()), codeRangeWidth(c.dict, p.Op, p.Val.I)) * notNull
		}
	case *boolColumn:
		return 0.5 * notNull
	}
	return zoneSelectivity(p, z) * notNull
}

// codeRangeWidth returns the width of the half-open code range p
// rewrites to against an order-preserving dictionary (0 when no code
// can match). For OpNe the width excludes the matched code.
func codeRangeWidth[T any](d sortedDict[T], op Op, v T) float64 {
	lo, hi, ok := predCodeRange(d, op, v)
	if !ok {
		return 0
	}
	w := float64(hi - lo)
	if op == OpNe {
		w -= float64(d.UpperBound(v) - d.LowerBound(v))
	}
	if w < 0 {
		return 0
	}
	return w
}

func dictSelectivity(size, width float64) float64 {
	if size <= 0 {
		return 0
	}
	return clamp01(width / size)
}

// zoneSelectivity interpolates a comparison linearly over the summary's
// [min, max] span — the zone min/max overlap fraction. Only numeric
// spans interpolate; any other type falls back to the defaults.
func zoneSelectivity(p Predicate, z Zone) float64 {
	lo, hi, ok := numericSpan(z)
	if !ok {
		return DefaultSelectivity(p.Op)
	}
	v := p.Val.AsFloat()
	span := hi - lo
	// Distinct-value estimate for the span: every integer in it for int
	// columns (capped by the non-null row count), unknown for floats.
	nonNull := float64(z.Rows - z.NullCount)
	distinct := nonNull
	if p.Val.Typ == types.Int64 || z.Min.Typ == types.Int64 {
		if d := span + 1; d < distinct {
			distinct = d
		}
	}
	if distinct < 1 {
		distinct = 1
	}
	eq := 1 / distinct
	if span <= 0 {
		// Single-valued span: the zone prune already said it can match.
		switch p.Op {
		case OpNe:
			return 0
		default:
			return 1
		}
	}
	frac := func(x float64) float64 { return clamp01((x - lo) / span) }
	switch p.Op {
	case OpEq:
		return eq
	case OpNe:
		return 1 - eq
	case OpLt:
		return frac(v)
	case OpLe:
		return clamp01(frac(v) + eq)
	case OpGt:
		return 1 - clamp01(frac(v)+eq)
	case OpGe:
		return 1 - frac(v)
	default:
		return DefaultSelectivity(p.Op)
	}
}

// numericSpan extracts the summary's [min, max] as floats (ok=false for
// non-numeric columns).
func numericSpan(z Zone) (lo, hi float64, ok bool) {
	switch z.Min.Typ {
	case types.Int64, types.Float64:
	default:
		return 0, 0, false
	}
	if z.Min.Null || z.Max.Null {
		return 0, 0, false
	}
	return z.Min.AsFloat(), z.Max.AsFloat(), true
}

// ColumnDistinct returns the distinct-value count of column ci when the
// segment knows it cheaply: the dictionary size for dictionary-encoded
// columns, the integer span width (capped by the non-null row count)
// for frame-of-reference ints, 2 for booleans. ok is false when the
// segment has no estimate (floats, empty segments).
func (s *Segment) ColumnDistinct(ci int) (int, bool) {
	if s.n == 0 {
		return 0, false
	}
	switch c := s.cols[ci].(type) {
	case *stringColumn:
		return c.dict.Size(), true
	case *intDictColumn:
		return c.dict.Size(), true
	case *boolColumn:
		return 2, true
	case *intColumn:
		z := s.summary[ci]
		if z.AllNull() || z.Min.Null {
			return 0, false
		}
		span := z.Max.I - z.Min.I + 1
		if nonNull := int64(z.Rows - z.NullCount); span > nonNull {
			span = nonNull
		}
		if span < 1 {
			return 0, false
		}
		return int(span), true
	default:
		return 0, false
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
