package colstore

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/types"
)

// buildParallelSegment builds a segment spanning several zones with
// int/float/string columns and scattered NULLs.
func buildParallelSegment(n int) *Segment {
	schema := types.MustSchema([]types.Column{
		{Name: "id", Type: types.Int64},
		{Name: "v", Type: types.Int64},
		{Name: "f", Type: types.Float64},
		{Name: "s", Type: types.String},
	}, "id")
	b := NewBuilder(schema, 1)
	for i := 0; i < n; i++ {
		v := types.NewInt(int64(i % 1000))
		if i%97 == 0 {
			v = types.NewNull(types.Int64)
		}
		f := types.NewFloat(float64(i) / 4)
		if i%89 == 0 {
			f = types.NewNull(types.Float64)
		}
		b.Add(types.Row{
			types.NewInt(int64(i)),
			v,
			f,
			types.NewString(fmt.Sprintf("s%02d", i%37)),
		})
	}
	return b.Build()
}

type scanTotals struct {
	rows int
	sumV int64
	sumF float64
}

func drain(seg *Segment, workers int, preds []Predicate) (scanTotals, ScanStats) {
	var tot scanTotals
	var sumV, rows atomic.Int64
	fn := func(b *types.Batch) bool {
		rows.Add(int64(b.Len()))
		vc := b.Cols[1]
		for i := 0; i < b.Len(); i++ {
			phys := b.RowIdx(i)
			if !vc.IsNull(phys) {
				sumV.Add(vc.Ints[phys])
			}
		}
		return true
	}
	var stats ScanStats
	if workers <= 1 {
		stats = seg.Scan(100, 0, []int{0, 1, 2, 3}, preds, fn)
	} else {
		stats = seg.ScanParallel(100, 0, []int{0, 1, 2, 3}, preds, workers, nil, fn)
	}
	tot.rows = int(rows.Load())
	tot.sumV = sumV.Load()
	return tot, stats
}

func TestScanParallelMatchesSerial(t *testing.T) {
	seg := buildParallelSegment(8*ZoneSize + 123)
	for _, preds := range [][]Predicate{
		nil,
		{{Col: 1, Op: OpLt, Val: types.NewInt(500)}},
		{{Col: 0, Op: OpGe, Val: types.NewInt(2000)}, {Col: 0, Op: OpLt, Val: types.NewInt(5000)}},
		{{Col: 3, Op: OpEq, Val: types.NewString("s05")}},
	} {
		serial, serialStats := drain(seg, 1, preds)
		for _, workers := range []int{2, 4} {
			par, parStats := drain(seg, workers, preds)
			if par != serial {
				t.Errorf("workers=%d preds=%v: parallel %+v != serial %+v", workers, preds, par, serial)
			}
			if parStats != serialStats {
				t.Errorf("workers=%d preds=%v: stats %+v != %+v", workers, preds, parStats, serialStats)
			}
		}
	}
}

func TestScanParallelVisibility(t *testing.T) {
	// Rows merged at different versions: only those at or before the
	// read snapshot are visible, identically in both scan modes.
	schema := types.MustSchema([]types.Column{{Name: "id", Type: types.Int64}}, "id")
	b := NewBuilder(schema, 50)
	const n = 4 * ZoneSize
	for i := 0; i < n; i++ {
		b.AddVersioned(types.Row{types.NewInt(int64(i))}, uint64(10+i%20))
	}
	seg := b.Build()
	for _, readTS := range []uint64{9, 15, 40} {
		count := func(workers int) (int, ScanStats) {
			got := 0
			var stats ScanStats
			fn := func(batch *types.Batch) bool { got += batch.Len(); return true }
			if workers <= 1 {
				stats = seg.Scan(readTS, 0, []int{0}, nil, fn)
			} else {
				stats = seg.ScanParallel(readTS, 0, []int{0}, nil, workers, nil, fn)
			}
			return got, stats
		}
		serial, serialStats := count(1)
		parallel, parStats := count(4)
		if serial != parallel || serialStats != parStats {
			t.Errorf("readTS=%d: serial %d/%+v != parallel %d/%+v", readTS, serial, serialStats, parallel, parStats)
		}
	}
}

func TestScanParallelEarlyStop(t *testing.T) {
	seg := buildParallelSegment(16 * ZoneSize)
	var delivered atomic.Int64
	stats := seg.ScanParallel(100, 0, []int{0}, nil, 4, nil, func(b *types.Batch) bool {
		return delivered.Add(1) < 3
	})
	if got := delivered.Load(); got < 3 {
		t.Fatalf("delivered %d batches before stop, want >= 3", got)
	}
	// Early termination must not have scanned everything.
	if stats.RowsMatched >= 16*ZoneSize {
		t.Errorf("early stop still matched all %d rows", stats.RowsMatched)
	}
}

// TestScanParallelBatchTransient documents the pooled-batch contract:
// a batch retained beyond the callback is reused, so retainers must
// Copy. The Copy must survive intact.
func TestScanParallelBatchTransient(t *testing.T) {
	seg := buildParallelSegment(6 * ZoneSize)
	var copies []*types.Batch
	seg.ScanParallel(100, 0, []int{0, 1}, nil, 2, nil, func(b *types.Batch) bool {
		copies = append(copies, b.Copy())
		return true
	})
	total := 0
	var sum int64
	for _, b := range copies {
		total += b.Len()
		c := b.Cols[0]
		for i := 0; i < b.Len(); i++ {
			sum += c.Ints[i]
		}
	}
	want := 6 * ZoneSize
	if total != want {
		t.Fatalf("copied rows = %d, want %d", total, want)
	}
	var wantSum int64
	for i := 0; i < want; i++ {
		wantSum += int64(i)
	}
	if sum != wantSum {
		t.Fatalf("sum over copies = %d, want %d", sum, wantSum)
	}
}

func TestScanParallelSingleZoneFallsBack(t *testing.T) {
	seg := buildParallelSegment(100) // one zone: ScanParallel degrades to Scan
	got, stats := drain(seg, 8, nil)
	want, wantStats := drain(seg, 1, nil)
	if got != want || stats != wantStats {
		t.Fatalf("single-zone parallel %+v/%+v != serial %+v/%+v", got, stats, want, wantStats)
	}
}
