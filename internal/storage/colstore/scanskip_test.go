package colstore

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/types"
)

// skipSchema is the four-type schema the scan-skipping suite runs over:
// a unique FOR-coded int, a low-cardinality dictionary-eligible int, a
// dictionary string, and a float — all but id nullable.
func skipSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "id", Type: types.Int64},
		{Name: "grp", Type: types.Int64},
		{Name: "cat", Type: types.String},
		{Name: "price", Type: types.Float64},
	}, "id")
}

// buildSkipSegment builds n rows with NULL patterns the pruning logic
// must survive: grp is entirely NULL in zone 2 (an all-null zone) and
// sporadically NULL elsewhere; cat and price have periodic NULLs.
func buildSkipSegment(t *testing.T, n int) *Segment {
	t.Helper()
	b := NewBuilder(skipSchema(), 1)
	for i := 0; i < n; i++ {
		grp := types.NewInt(int64(i%16) * 1000)
		if i/ZoneSize == 2 || i%11 == 0 {
			grp = types.NewNull(types.Int64)
		}
		cat := types.NewString(fmt.Sprintf("c%02d", i%10))
		if i%7 == 0 {
			cat = types.NewNull(types.String)
		}
		price := types.NewFloat(float64(i%50) * 0.75)
		if i%5 == 0 {
			price = types.NewNull(types.Float64)
		}
		b.Add(types.Row{types.NewInt(int64(i)), grp, cat, price})
	}
	return b.Build()
}

// TestIntDictEncodingChosen pins that a low-cardinality int column
// actually takes the int-dictionary encoding (the rewrite path under
// test) and still round-trips values and NULLs.
func TestIntDictEncodingChosen(t *testing.T) {
	seg := buildSkipSegment(t, 4*ZoneSize)
	if _, ok := seg.cols[1].(*intDictColumn); !ok {
		t.Fatalf("grp column encoded as %T, want *intDictColumn", seg.cols[1])
	}
	if _, ok := seg.cols[0].(*intColumn); !ok {
		t.Fatalf("id column encoded as %T, want *intColumn (FOR)", seg.cols[0])
	}
	for _, i := range []int{0, 1, 11, 2*ZoneSize + 5, 3*ZoneSize - 1, 4*ZoneSize - 1} {
		got := seg.Row(i)[1]
		wantNull := i/ZoneSize == 2 || i%11 == 0
		if got.Null != wantNull {
			t.Fatalf("row %d grp null = %v, want %v", i, got.Null, wantNull)
		}
		if !wantNull && got.I != int64(i%16)*1000 {
			t.Fatalf("row %d grp = %d", i, got.I)
		}
	}
}

// naiveScan is the reference evaluator: row-at-a-time Predicate.Matches
// over decoded values, no zone maps, no code rewrite.
func naiveScan(seg *Segment, readTS, self uint64, preds []Predicate) []types.Row {
	var out []types.Row
	for i := 0; i < seg.NumRows(); i++ {
		if !seg.RowVisible(i, readTS, self) {
			continue
		}
		row := seg.Row(i)
		ok := true
		for _, p := range preds {
			if !p.Matches(row[p.Col]) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, row)
		}
	}
	return out
}

func rowKey(r types.Row) string {
	s := ""
	for _, v := range r {
		s += v.String() + "|"
	}
	return s
}

// predPool enumerates the adversarial literal pool per column: present
// values, absent values inside the domain (dictionary membership must
// catch them), and values below/above every zone's min/max.
func predPool() [][]types.Value {
	return [][]types.Value{
		0: {types.NewInt(-1), types.NewInt(0), types.NewInt(500), types.NewInt(2047),
			types.NewInt(2048), types.NewInt(8191), types.NewInt(9000)},
		1: {types.NewInt(0), types.NewInt(1000), types.NewInt(1500), types.NewInt(-5),
			types.NewInt(15000), types.NewInt(20000), types.NewFloat(999.5), types.NewFloat(1000)},
		2: {types.NewString("c00"), types.NewString("c05"), types.NewString("c09"),
			types.NewString("c04x"), types.NewString("a"), types.NewString("z"), types.NewString("")},
		3: {types.NewFloat(0), types.NewFloat(0.75), types.NewFloat(10.5), types.NewFloat(-1),
			types.NewFloat(36.75), types.NewFloat(100), types.NewInt(3)},
	}
}

var allOps = []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpIsNull, OpIsNotNull}

// TestScanSkipParityExhaustive runs every (column, operator, literal)
// single-predicate combination through the rewritten scan and the naive
// evaluator and requires identical rows in identical order.
func TestScanSkipParityExhaustive(t *testing.T) {
	seg := buildSkipSegment(t, 4*ZoneSize)
	pool := predPool()
	proj := []int{0, 1, 2, 3}
	for col := 0; col < 4; col++ {
		for _, op := range allOps {
			lits := pool[col]
			if op == OpIsNull || op == OpIsNotNull {
				lits = []types.Value{{}}
			}
			for _, lit := range lits {
				preds := []Predicate{{Col: col, Op: op, Val: lit}}
				want := naiveScan(seg, 100, 0, preds)
				var got []string
				seg.Scan(100, 0, proj, preds, func(b *types.Batch) bool {
					for r := 0; r < b.Len(); r++ {
						got = append(got, rowKey(b.Row(r)))
					}
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("col=%d op=%s lit=%s: got %d rows, want %d",
						col, op, lit, len(got), len(want))
				}
				for i := range got {
					if got[i] != rowKey(want[i]) {
						t.Fatalf("col=%d op=%s lit=%s row %d: got %s want %s",
							col, op, lit, i, got[i], rowKey(want[i]))
					}
				}
			}
		}
	}
}

// TestScanSkipParityRandomized stacks 2-3 random predicates (so later
// kernels see already-narrowed selection vectors) and checks parity on
// both the serial scan and the concurrent per-worker scan.
func TestScanSkipParityRandomized(t *testing.T) {
	seg := buildSkipSegment(t, 4*ZoneSize)
	st := NewStore(skipSchema())
	st.AddSegment(seg)
	pool := predPool()
	rng := rand.New(rand.NewSource(42))
	proj := []int{0, 1, 2, 3}
	for trial := 0; trial < 200; trial++ {
		np := 2 + rng.Intn(2)
		preds := make([]Predicate, 0, np)
		for len(preds) < np {
			col := rng.Intn(4)
			op := allOps[rng.Intn(len(allOps))]
			var lit types.Value
			if op != OpIsNull && op != OpIsNotNull {
				lit = pool[col][rng.Intn(len(pool[col]))]
			}
			preds = append(preds, Predicate{Col: col, Op: op, Val: lit})
		}
		want := naiveScan(seg, 100, 0, preds)
		wantKeys := make([]string, len(want))
		for i, r := range want {
			wantKeys[i] = rowKey(r)
		}

		var got []string
		seg.Scan(100, 0, proj, preds, func(b *types.Batch) bool {
			for r := 0; r < b.Len(); r++ {
				got = append(got, rowKey(b.Row(r)))
			}
			return true
		})
		if fmt.Sprint(got) != fmt.Sprint(wantKeys) {
			t.Fatalf("trial %d preds=%v: serial parity broke (%d vs %d rows)",
				trial, preds, len(got), len(want))
		}

		// Parallel path: order is not defined across workers, compare sorted.
		var mu sync.Mutex
		var gotPar []string
		st.ScanParallelWorkers(100, 0, proj, preds, 4, nil, func(_ int, b *types.Batch) bool {
			mu.Lock()
			defer mu.Unlock()
			for r := 0; r < b.Len(); r++ {
				gotPar = append(gotPar, rowKey(b.Row(r)))
			}
			return true
		})
		sort.Strings(gotPar)
		sortedWant := append([]string(nil), wantKeys...)
		sort.Strings(sortedWant)
		if fmt.Sprint(gotPar) != fmt.Sprint(sortedWant) {
			t.Fatalf("trial %d preds=%v: parallel parity broke (%d vs %d rows)",
				trial, preds, len(gotPar), len(want))
		}
	}
}

// TestSegmentPruneStats pins the segment-level skip: a clustered store
// where the predicate excludes three of four segments must report them
// pruned without decoding a single value from them.
func TestSegmentPruneStats(t *testing.T) {
	st := NewStore(skipSchema())
	for s := 0; s < 4; s++ {
		b := NewBuilder(skipSchema(), 1)
		for i := 0; i < 2 * ZoneSize; i++ {
			id := int64(s*2*ZoneSize + i)
			b.Add(types.Row{types.NewInt(id), types.NewInt(id % 16 * 1000),
				types.NewString("x"), types.NewFloat(1)})
		}
		st.AddSegment(b.Build())
	}
	preds := []Predicate{
		{Col: 0, Op: OpGe, Val: types.NewInt(100)},
		{Col: 0, Op: OpLt, Val: types.NewInt(150)},
	}
	rows := 0
	stats := st.Scan(100, 0, []int{0, 3}, preds, func(b *types.Batch) bool {
		rows += b.Len()
		return true
	})
	if rows != 50 {
		t.Fatalf("rows = %d, want 50", rows)
	}
	if stats.SegmentsTotal != 4 || stats.SegmentsPruned != 3 {
		t.Fatalf("segments pruned %d/%d, want 3/4", stats.SegmentsPruned, stats.SegmentsTotal)
	}
	if stats.ZonesTotal != 8 || stats.ZonesPruned != 7 {
		t.Fatalf("zones pruned %d/%d, want 7/8", stats.ZonesPruned, stats.ZonesTotal)
	}
	if stats.RowsScanned != ZoneSize {
		t.Fatalf("rows scanned = %d, want one zone", stats.RowsScanned)
	}
	// Late materialization: both filter passes decode the id column
	// (1024 + 924 positions) and only the 50 survivors materialize the
	// two projected columns — nothing close to the eager
	// rows×columns cost.
	if want := 1024 + 924 + 50*2; stats.RowsDecoded != want {
		t.Fatalf("rows decoded = %d, want %d", stats.RowsDecoded, want)
	}
}

// TestDictAbsentEqualityPrunesSegment pins the dictionary-membership
// skip: an equality literal lexically inside [min, max] but absent from
// the dictionary excludes the segment with zero decoded values.
func TestDictAbsentEqualityPrunesSegment(t *testing.T) {
	seg := buildSkipSegment(t, 4*ZoneSize)
	preds := []Predicate{{Col: 2, Op: OpEq, Val: types.NewString("c04x")}}
	stats := seg.Scan(100, 0, []int{0}, preds, func(b *types.Batch) bool {
		t.Fatal("no batch expected")
		return true
	})
	if stats.SegmentsPruned != 1 || stats.ZonesPruned != 4 {
		t.Fatalf("pruned segments=%d zones=%d, want 1/4", stats.SegmentsPruned, stats.ZonesPruned)
	}
	if stats.RowsDecoded != 0 || stats.RowsScanned != 0 {
		t.Fatalf("decoded=%d scanned=%d, want 0/0", stats.RowsDecoded, stats.RowsScanned)
	}
	// Same for the int dictionary.
	preds = []Predicate{{Col: 1, Op: OpEq, Val: types.NewInt(1500)}}
	stats = seg.Scan(100, 0, []int{0}, preds, func(b *types.Batch) bool {
		t.Fatal("no batch expected")
		return true
	})
	if stats.SegmentsPruned != 1 || stats.RowsDecoded != 0 {
		t.Fatalf("int-dict absent literal: pruned=%d decoded=%d", stats.SegmentsPruned, stats.RowsDecoded)
	}
}

// TestNullCountPruning pins IS NULL / IS NOT NULL zone pruning by
// null-count rather than sentinel min/max.
func TestNullCountPruning(t *testing.T) {
	seg := buildSkipSegment(t, 4*ZoneSize)
	// id has no NULLs anywhere: IS NULL prunes the whole segment.
	stats := seg.Scan(100, 0, []int{0}, []Predicate{{Col: 0, Op: OpIsNull}}, func(b *types.Batch) bool {
		t.Fatal("no batch expected")
		return true
	})
	if stats.SegmentsPruned != 1 {
		t.Fatalf("IS NULL on non-null column: segments pruned = %d", stats.SegmentsPruned)
	}
	// grp IS NOT NULL prunes exactly the all-null zone 2.
	stats = seg.Scan(100, 0, []int{0}, []Predicate{{Col: 1, Op: OpIsNotNull}}, func(b *types.Batch) bool { return true })
	if stats.ZonesPruned != 1 {
		t.Fatalf("IS NOT NULL: zones pruned = %d, want 1 (the all-null zone)", stats.ZonesPruned)
	}
	// A comparison can never match in the all-null zone either.
	stats = seg.Scan(100, 0, []int{0}, []Predicate{{Col: 1, Op: OpLe, Val: types.NewInt(100000)}}, func(b *types.Batch) bool { return true })
	if stats.ZonesPruned < 1 {
		t.Fatalf("comparison over all-null zone not pruned (pruned=%d)", stats.ZonesPruned)
	}
	// Summary fold must expose the null counts.
	sum := seg.ColumnSummary(1)
	if sum.NullCount <= ZoneSize || sum.Rows != 4*ZoneSize {
		t.Fatalf("summary null-count=%d rows=%d", sum.NullCount, sum.Rows)
	}
	if z := seg.zones[1][2]; !z.AllNull() {
		t.Fatalf("zone 2 should be all-null (nulls=%d rows=%d)", z.NullCount, z.Rows)
	}
}

// TestFilterKernelsZeroAlloc pins that the vectorized predicate kernels
// — including the dictionary code rewrite — allocate nothing in steady
// state: no string is ever materialized to evaluate a string predicate.
func TestFilterKernelsZeroAlloc(t *testing.T) {
	seg := buildSkipSegment(t, 4*ZoneSize)
	sc := &scanScratch{sel: make([]int, 0, ZoneSize)}
	sel := make([]int, ZoneSize)
	cases := []Predicate{
		{Col: 2, Op: OpEq, Val: types.NewString("c05")},
		{Col: 2, Op: OpNe, Val: types.NewString("c05")},
		{Col: 2, Op: OpGe, Val: types.NewString("c03")},
		{Col: 1, Op: OpEq, Val: types.NewInt(4000)},
		{Col: 1, Op: OpLt, Val: types.NewInt(9000)},
		{Col: 0, Op: OpGt, Val: types.NewInt(1234)},
		{Col: 2, Op: OpIsNotNull},
	}
	var stats ScanStats
	for _, p := range cases {
		p := p
		reset := func() {
			for i := range sel {
				sel[i] = i
			}
		}
		reset()
		seg.filterSel(p, sel, sc, &stats) // warm scratch buffers
		allocs := testing.AllocsPerRun(50, func() {
			reset()
			seg.filterSel(p, sel, sc, &stats)
		})
		if allocs != 0 {
			t.Fatalf("pred %v: %v allocs/run, want 0", p, allocs)
		}
	}
}
