package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/txn"
	"repro/internal/types"
)

func testSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "id", Type: types.Int64},
		{Name: "cat", Type: types.String},
		{Name: "price", Type: types.Float64},
		{Name: "active", Type: types.Bool},
	}, "id")
}

func buildSegment(t *testing.T, n int, createTS uint64) *Segment {
	t.Helper()
	b := NewBuilder(testSchema(), createTS)
	cats := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		b.Add(types.Row{
			types.NewInt(int64(i)),
			types.NewString(cats[i%len(cats)]),
			types.NewFloat(float64(i) * 1.5),
			types.NewBool(i%2 == 0),
		})
	}
	return b.Build()
}

func TestSegmentRoundTrip(t *testing.T) {
	seg := buildSegment(t, 3000, 10)
	if seg.NumRows() != 3000 {
		t.Fatalf("NumRows = %d", seg.NumRows())
	}
	for _, i := range []int{0, 1, 1023, 1024, 2999} {
		r := seg.Row(i)
		if r[0].I != int64(i) {
			t.Fatalf("row %d id = %d", i, r[0].I)
		}
		if r[2].F != float64(i)*1.5 {
			t.Fatalf("row %d price = %f", i, r[2].F)
		}
		if r[3].Bool() != (i%2 == 0) {
			t.Fatalf("row %d active wrong", i)
		}
	}
	if seg.CreateTS() != 10 {
		t.Fatal("CreateTS")
	}
}

func TestSegmentNulls(t *testing.T) {
	b := NewBuilder(testSchema(), 1)
	b.Add(types.Row{types.NewInt(1), types.NewNull(types.String), types.NewNull(types.Float64), types.NewNull(types.Bool)})
	b.Add(types.Row{types.NewInt(2), types.NewString("x"), types.NewFloat(5), types.NewBool(true)})
	seg := b.Build()
	r := seg.Row(0)
	if !r[1].Null || !r[2].Null || !r[3].Null {
		t.Fatal("nulls not preserved")
	}
	if seg.Row(1)[1].S != "x" {
		t.Fatal("non-null after null wrong")
	}
	// NULL never matches predicates.
	var n int
	seg.Scan(100, 0, []int{0}, []Predicate{{Col: 1, Op: OpEq, Val: types.NewString("x")}}, func(b *types.Batch) bool {
		n += b.Len()
		return true
	})
	if n != 1 {
		t.Fatalf("predicate over nulls matched %d", n)
	}
}

func TestSegmentCompression(t *testing.T) {
	seg := buildSegment(t, 10000, 1)
	// id: FOR-coded 0..9999 (14 bits), cat: 4-value dict (2 bits),
	// price: raw floats, active: 1 bit. Raw would be ~10000*(8+5+8+1).
	raw := 10000 * 22
	if seg.SizeBytes() >= raw {
		t.Fatalf("no compression: %d >= %d", seg.SizeBytes(), raw)
	}
}

func TestScanProjectionAndPredicates(t *testing.T) {
	seg := buildSegment(t, 5000, 1)
	var ids []int64
	stats := seg.Scan(100, 0, []int{0, 2}, []Predicate{
		{Col: 0, Op: OpGe, Val: types.NewInt(100)},
		{Col: 0, Op: OpLt, Val: types.NewInt(110)},
	}, func(b *types.Batch) bool {
		if len(b.Cols) != 2 {
			t.Fatal("projection width")
		}
		ids = append(ids, b.Cols[0].Ints...)
		return true
	})
	if len(ids) != 10 || ids[0] != 100 || ids[9] != 109 {
		t.Fatalf("ids = %v", ids)
	}
	if stats.RowsMatched != 10 {
		t.Fatalf("stats matched = %d", stats.RowsMatched)
	}
}

func TestScanStringPredicateOnCodes(t *testing.T) {
	seg := buildSegment(t, 4000, 1)
	count := 0
	seg.Scan(100, 0, []int{1}, []Predicate{{Col: 1, Op: OpEq, Val: types.NewString("beta")}}, func(b *types.Batch) bool {
		for i := 0; i < b.Len(); i++ {
			if b.Cols[0].Get(i).S != "beta" {
				t.Fatal("wrong string matched")
			}
		}
		count += b.Len()
		return true
	})
	if count != 1000 {
		t.Fatalf("beta count = %d", count)
	}
	// Range predicate on strings (code-domain).
	count = 0
	seg.Scan(100, 0, []int{1}, []Predicate{{Col: 1, Op: OpLe, Val: types.NewString("beta")}}, func(b *types.Batch) bool {
		count += b.Len()
		return true
	})
	// alpha + beta = 2000.
	if count != 2000 {
		t.Fatalf("<=beta count = %d", count)
	}
	// Not-equal.
	count = 0
	seg.Scan(100, 0, []int{1}, []Predicate{{Col: 1, Op: OpNe, Val: types.NewString("beta")}}, func(b *types.Batch) bool {
		count += b.Len()
		return true
	})
	if count != 3000 {
		t.Fatalf("<>beta count = %d", count)
	}
	// Absent value: Ne matches everything, Eq nothing.
	count = 0
	seg.Scan(100, 0, []int{1}, []Predicate{{Col: 1, Op: OpNe, Val: types.NewString("zzz")}}, func(b *types.Batch) bool {
		count += b.Len()
		return true
	})
	if count != 4000 {
		t.Fatalf("<>zzz count = %d", count)
	}
	count = 0
	seg.Scan(100, 0, []int{1}, []Predicate{{Col: 1, Op: OpEq, Val: types.NewString("zzz")}}, func(b *types.Batch) bool {
		count += b.Len()
		return true
	})
	if count != 0 {
		t.Fatalf("=zzz count = %d", count)
	}
}

func TestZoneMapPruning(t *testing.T) {
	// Clustered ids: predicate on a narrow range must prune most zones.
	seg := buildSegment(t, 64*ZoneSize, 1)
	stats := seg.Scan(100, 0, []int{0}, []Predicate{
		{Col: 0, Op: OpGe, Val: types.NewInt(0)},
		{Col: 0, Op: OpLt, Val: types.NewInt(int64(ZoneSize))},
	}, func(b *types.Batch) bool { return true })
	if stats.ZonesTotal != 64 {
		t.Fatalf("zones = %d", stats.ZonesTotal)
	}
	if stats.ZonesPruned < 62 {
		t.Fatalf("pruned only %d of 64 zones", stats.ZonesPruned)
	}
	if stats.RowsMatched != ZoneSize {
		t.Fatalf("matched = %d", stats.RowsMatched)
	}
}

func TestZonePruningNeverChangesResults(t *testing.T) {
	// Property: scan results with shuffled data (no pruning possible)
	// match brute-force evaluation.
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder(testSchema(), 1)
	n := 3 * ZoneSize
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	for i := 0; i < n; i++ {
		b.Add(types.Row{types.NewInt(vals[i]), types.NewString("x"), types.NewFloat(0), types.NewBool(false)})
	}
	// Note: ids duplicate; key index tolerates duplicates for this test.
	seg := b.Build()
	for _, pred := range []Predicate{
		{Col: 0, Op: OpEq, Val: types.NewInt(500)},
		{Col: 0, Op: OpLt, Val: types.NewInt(100)},
		{Col: 0, Op: OpGe, Val: types.NewInt(900)},
		{Col: 0, Op: OpNe, Val: types.NewInt(0)},
	} {
		want := 0
		for _, v := range vals {
			if pred.Matches(types.NewInt(v)) {
				want++
			}
		}
		got := 0
		seg.Scan(100, 0, []int{0}, []Predicate{pred}, func(b *types.Batch) bool {
			got += b.Len()
			return true
		})
		if got != want {
			t.Fatalf("pred %v: got %d, want %d", pred, got, want)
		}
	}
}

func TestFindKeyAndMarkDeleted(t *testing.T) {
	o := txn.NewOracle()
	seg := buildSegment(t, 2000, 1)
	idx := seg.FindKey(types.Row{types.NewInt(777)})
	if idx != 777 {
		t.Fatalf("FindKey = %d", idx)
	}
	if seg.FindKey(types.Row{types.NewInt(99999)}) != -1 {
		t.Fatal("absent key found")
	}
	tx := o.Begin()
	if err := seg.MarkDeleted(tx, idx); err != nil {
		t.Fatal(err)
	}
	// Invisible to the deleter, visible to others while uncommitted.
	if seg.RowVisible(idx, tx.ReadTS, tx.ID) {
		t.Fatal("own delete should conceal")
	}
	other := o.Begin()
	if !seg.RowVisible(idx, other.ReadTS, other.ID) {
		t.Fatal("uncommitted delete leaked")
	}
	// Concurrent delete conflicts.
	if err := seg.MarkDeleted(other, idx); err != txn.ErrConflict {
		t.Fatalf("concurrent mark: %v", err)
	}
	other.Abort()
	ts, _ := tx.Commit()
	if seg.DeletedRows() != 1 {
		t.Fatal("deleted count")
	}
	// Visible to snapshots before the delete, invisible after.
	if !seg.RowVisible(idx, ts-1, 0) {
		t.Fatal("old snapshot should still see the row")
	}
	if seg.RowVisible(idx, ts, 0) {
		t.Fatal("row visible after committed delete")
	}
	// Abort path restores the mark.
	tx2 := o.Begin()
	idx2 := seg.FindKey(types.Row{types.NewInt(5)})
	seg.MarkDeleted(tx2, idx2)
	tx2.Abort()
	if seg.DeleteTS(idx2) != txn.InfTS {
		t.Fatal("abort did not restore delete TS")
	}
}

func TestScanSkipsDeleted(t *testing.T) {
	o := txn.NewOracle()
	seg := buildSegment(t, 100, 1)
	tx := o.Begin()
	for i := 0; i < 50; i++ {
		if err := seg.MarkDeleted(tx, i); err != nil {
			t.Fatal(err)
		}
	}
	ts, _ := tx.Commit()
	count := 0
	stats := seg.Scan(ts, 0, []int{0}, nil, func(b *types.Batch) bool {
		count += b.Len()
		return true
	})
	if count != 50 {
		t.Fatalf("visible rows = %d", count)
	}
	if stats.RowsConcealed != 50 {
		t.Fatalf("concealed = %d", stats.RowsConcealed)
	}
}

func TestStoreMultiSegmentScanAndFind(t *testing.T) {
	o := txn.NewOracle()
	st := NewStore(testSchema())
	// Two segments with disjoint key ranges.
	b1 := NewBuilder(testSchema(), 1)
	for i := 0; i < 100; i++ {
		b1.Add(types.Row{types.NewInt(int64(i)), types.NewString("s1"), types.NewFloat(1), types.NewBool(true)})
	}
	st.AddSegment(b1.Build())
	b2 := NewBuilder(testSchema(), 2)
	for i := 100; i < 250; i++ {
		b2.Add(types.Row{types.NewInt(int64(i)), types.NewString("s2"), types.NewFloat(2), types.NewBool(false)})
	}
	st.AddSegment(b2.Build())

	if st.NumSegments() != 2 || st.NumRows() != 250 {
		t.Fatalf("segments=%d rows=%d", st.NumSegments(), st.NumRows())
	}
	count := 0
	st.Scan(100, 0, []int{0}, nil, func(b *types.Batch) bool {
		count += b.Len()
		return true
	})
	if count != 250 {
		t.Fatalf("scan count = %d", count)
	}
	seg, idx, ok := st.FindVisible(types.Row{types.NewInt(150)}, 100, 0)
	if !ok || seg.Row(idx)[1].S != "s2" {
		t.Fatal("FindVisible failed")
	}
	// Advance the oracle clock past the segment create timestamps so a
	// fresh snapshot sees the merged rows.
	for o.Now() < 2 {
		tmp := o.Begin()
		tmp.Commit()
	}
	// MarkDeleted through the store.
	tx := o.Begin()
	found, err := st.MarkDeleted(tx, types.Row{types.NewInt(150)})
	if !found || err != nil {
		t.Fatalf("MarkDeleted: %v %v", found, err)
	}
	tx.Commit()
	if _, _, ok := st.FindVisible(types.Row{types.NewInt(150)}, o.Now(), 0); ok {
		t.Fatal("deleted key still visible")
	}
	found, _ = st.MarkDeleted(o.Begin(), types.Row{types.NewInt(99999)})
	if found {
		t.Fatal("absent key marked")
	}
}

func TestStoreCompact(t *testing.T) {
	o := txn.NewOracle()
	st := NewStore(testSchema())
	b := NewBuilder(testSchema(), 1)
	for i := 0; i < 1000; i++ {
		b.Add(types.Row{types.NewInt(int64(i)), types.NewString("x"), types.NewFloat(0), types.NewBool(false)})
	}
	st.AddSegment(b.Build())
	// Delete 40% — above the compaction threshold.
	tx := o.Begin()
	for i := 0; i < 400; i++ {
		if _, err := st.MarkDeleted(tx, types.Row{types.NewInt(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	n := st.Compact(o.Now())
	if n != 1 {
		t.Fatalf("compacted %d segments", n)
	}
	if st.NumRows() != 600 {
		t.Fatalf("rows after compact = %d", st.NumRows())
	}
	// Data intact.
	count := 0
	st.Scan(o.Now(), 0, []int{0}, nil, func(b *types.Batch) bool {
		for _, id := range b.Cols[0].Ints {
			if id < 400 {
				t.Fatalf("deleted row %d survived compaction", id)
			}
		}
		count += b.Len()
		return true
	})
	if count != 600 {
		t.Fatalf("visible rows = %d", count)
	}
	// Below threshold: no rewrite.
	if st.Compact(o.Now()) != 0 {
		t.Fatal("second compact should be a no-op")
	}
}

func TestScanEarlyStop(t *testing.T) {
	seg := buildSegment(t, 10*ZoneSize, 1)
	batches := 0
	seg.Scan(100, 0, []int{0}, nil, func(b *types.Batch) bool {
		batches++
		return false
	})
	if batches != 1 {
		t.Fatalf("early stop delivered %d batches", batches)
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %d String = %q", op, op.String())
		}
	}
}

func TestEmptySegment(t *testing.T) {
	b := NewBuilder(testSchema(), 1)
	seg := b.Build()
	if seg.NumRows() != 0 {
		t.Fatal("empty segment rows")
	}
	n := 0
	seg.Scan(10, 0, []int{0}, nil, func(b *types.Batch) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty segment delivered batches")
	}
}

func TestBuilderLen(t *testing.T) {
	b := NewBuilder(testSchema(), 1)
	if b.Len() != 0 {
		t.Fatal("fresh builder")
	}
	b.Add(types.Row{types.NewInt(1), types.NewString("a"), types.NewFloat(0), types.NewBool(false)})
	if b.Len() != 1 {
		t.Fatal("Len after Add")
	}
}

func TestFloatPredicates(t *testing.T) {
	seg := buildSegment(t, 1000, 1)
	count := 0
	seg.Scan(100, 0, []int{2}, []Predicate{{Col: 2, Op: OpLt, Val: types.NewFloat(15.0)}}, func(b *types.Batch) bool {
		count += b.Len()
		return true
	})
	// price = i*1.5 < 15 → i < 10.
	if count != 10 {
		t.Fatalf("float pred count = %d", count)
	}
}

func TestBoolPredicates(t *testing.T) {
	seg := buildSegment(t, 100, 1)
	count := 0
	seg.Scan(100, 0, []int{3}, []Predicate{{Col: 3, Op: OpEq, Val: types.NewBool(true)}}, func(b *types.Batch) bool {
		count += b.Len()
		return true
	})
	if count != 50 {
		t.Fatalf("bool pred count = %d", count)
	}
}

func TestScanStatsString(t *testing.T) {
	// Sanity on stats plumbing across the store wrapper.
	st := NewStore(testSchema())
	for s := 0; s < 3; s++ {
		b := NewBuilder(testSchema(), uint64(s+1))
		for i := 0; i < ZoneSize; i++ {
			b.Add(types.Row{types.NewInt(int64(s*ZoneSize + i)), types.NewString("x"), types.NewFloat(0), types.NewBool(false)})
		}
		st.AddSegment(b.Build())
	}
	stats := st.Scan(100, 0, []int{0}, []Predicate{{Col: 0, Op: OpLt, Val: types.NewInt(10)}}, func(b *types.Batch) bool { return true })
	if stats.ZonesTotal != 3 {
		t.Fatalf("zones total = %d", stats.ZonesTotal)
	}
	if stats.ZonesPruned != 2 {
		t.Fatalf("zones pruned = %d", stats.ZonesPruned)
	}
	if fmt.Sprint(stats) == "" {
		t.Error("stats should format")
	}
}
