package colstore

import (
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// Op is a comparison operator for pushed-down predicates.
type Op uint8

// Predicate operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Predicate is a single-column comparison pushed into the scan. A scan
// evaluates the conjunction of its predicates.
type Predicate struct {
	Col int
	Op  Op
	Val types.Value
}

// Matches evaluates the predicate against a value (NULL never matches).
func (p Predicate) Matches(v types.Value) bool {
	if v.Null || p.Val.Null {
		return false
	}
	c := types.Compare(v, p.Val)
	switch p.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// zoneCanMatch reports whether a zone's [min,max] could contain a value
// matching p. This is the zone-map prune test (E11).
func zoneCanMatch(p Predicate, z Zone) bool {
	if p.Val.Null {
		return false
	}
	if z.Min.Null && z.Max.Null {
		return false // all-null zone matches no comparison
	}
	cMin := types.Compare(z.Min, p.Val)
	cMax := types.Compare(z.Max, p.Val)
	switch p.Op {
	case OpEq:
		return cMin <= 0 && cMax >= 0
	case OpNe:
		return !(cMin == 0 && cMax == 0)
	case OpLt:
		return cMin < 0
	case OpLe:
		return cMin <= 0
	case OpGt:
		return cMax > 0
	case OpGe:
		return cMax >= 0
	default:
		return true
	}
}

// IsDone reports (without blocking) whether the cancellation channel is
// closed; a nil channel never cancels. Scan drivers poll it between
// zones/batches.
func IsDone(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ScanStats reports the pruning behaviour of one scan.
type ScanStats struct {
	ZonesTotal    int
	ZonesPruned   int
	RowsScanned   int
	RowsMatched   int
	RowsConcealed int
}

// merge folds o into s (ZonesTotal is set by the scan driver, not
// accumulated per zone range).
func (s *ScanStats) merge(o ScanStats) {
	s.ZonesPruned += o.ZonesPruned
	s.RowsScanned += o.RowsScanned
	s.RowsMatched += o.RowsMatched
	s.RowsConcealed += o.RowsConcealed
}

// scanScratch holds the reusable buffers of one scanning goroutine:
// the selection vector the predicate kernels narrow, the gather
// buffers zone materialization decodes into, and the projected null
// mask. One scratch serves a whole scan, so steady-state zone
// materialization allocates nothing.
type scanScratch struct {
	sel   []int
	ints  []int64
	codes []uint64
	strs  []string
	nulls *types.NullMask
}

// Scan streams the projection proj of rows matching all predicates and
// visible at (readTS, self), one batch per zone, to fn; fn returning
// false stops the scan. It returns pruning statistics.
//
// Predicates are evaluated column-at-a-time per zone (vectorized in the
// batch-processing sense the tutorial attributes to HANA/BLU scans):
// zone maps prune first, then each predicate narrows a selection vector
// before the next runs, and only surviving rows are materialized.
//
// Each delivered batch is freshly allocated and may be retained by fn;
// the pooled, transient-batch variant is ScanParallel.
func (s *Segment) Scan(readTS, self uint64, proj []int, preds []Predicate, fn func(b *types.Batch) bool) ScanStats {
	var stats ScanStats
	if s.n == 0 {
		return stats
	}
	nz := (s.n + ZoneSize - 1) / ZoneSize
	stats.ZonesTotal = nz
	projSchema := s.projSchema(proj)
	sc := &scanScratch{sel: make([]int, 0, ZoneSize)}
	emit := func(sel []int) bool {
		batch := types.NewBatch(projSchema, len(sel))
		s.fillBatch(batch, proj, sel, sc)
		return fn(batch)
	}
	s.scanZones(0, nz, readTS, self, preds, sc, &stats, emit)
	return stats
}

// ScanParallel is the morsel-parallel variant of Scan: zones are dealt
// to a bounded pool of workers through an atomic cursor, each worker
// narrows its own selection vector and materializes survivors into
// batches drawn from a per-worker BatchPool, and fn observes one batch
// at a time under a mutex (zone order is not preserved). The batch
// passed to fn is pooled: it is valid only until fn returns, so
// retainers must Copy it. Stats are merged across workers.
//
// done, when non-nil, cancels the scan: workers check it between zones
// (and before delivering a batch) and exit promptly once it is closed,
// so a cancelled query releases its morsel workers within one zone's
// worth of work. A nil done never cancels.
func (s *Segment) ScanParallel(readTS, self uint64, proj []int, preds []Predicate, workers int, done <-chan struct{}, fn func(b *types.Batch) bool) ScanStats {
	nz := (s.n + ZoneSize - 1) / ZoneSize
	if workers > nz {
		workers = nz
	}
	if workers <= 1 {
		if done == nil {
			return s.Scan(readTS, self, proj, preds, fn)
		}
		return s.Scan(readTS, self, proj, preds, func(b *types.Batch) bool {
			select {
			case <-done:
				return false
			default:
			}
			return fn(b)
		})
	}
	// Funnel the per-worker scan through one mutex so fn observes a
	// single batch at a time (the legacy single-consumer contract; the
	// exec pipeline driver consumes per-worker instead).
	var (
		deliver sync.Mutex
		stopped bool
	)
	return s.ScanParallelWorkers(readTS, self, proj, preds, workers, done, func(_ int, b *types.Batch) bool {
		deliver.Lock()
		defer deliver.Unlock()
		if stopped || IsDone(done) {
			return false
		}
		if !fn(b) {
			stopped = true
			return false
		}
		return true
	})
}

// ScanParallelWorkers is the per-worker morsel scan beneath ScanParallel
// and the exec pipeline driver: zones are dealt to up to workers
// goroutines through an atomic cursor and fn is invoked CONCURRENTLY —
// one call per delivered batch, from the goroutine of the worker that
// produced it, carrying that worker's id (0..workers-1). There is no
// cross-worker serialization; callers own per-worker sinks (thread-local
// aggregation state, per-worker build stores). Each delivered batch is
// worker-owned and valid only until fn returns. fn returning false stops
// the whole scan. Stats merge across workers; done cancels between zones
// as in ScanParallel. All workers have exited when the call returns.
//
//oadb:allow-ctxscan cancellation is the done channel (hot path avoids ctx plumbing per zone); callers thread ctx.Done() into done
func (s *Segment) ScanParallelWorkers(readTS, self uint64, proj []int, preds []Predicate, workers int, done <-chan struct{}, fn func(worker int, b *types.Batch) bool) ScanStats {
	nz := (s.n + ZoneSize - 1) / ZoneSize
	if workers > nz {
		workers = nz
	}
	projSchema := s.projSchema(proj)
	var (
		cursor  atomic.Int64
		stopped atomic.Bool
		total   ScanStats
	)
	total.ZonesTotal = nz
	runWorker := func(w int) ScanStats {
		sc := &scanScratch{sel: make([]int, 0, ZoneSize)}
		batch := types.NewBatch(projSchema, ZoneSize)
		var local ScanStats
		emit := func(sel []int) bool {
			if stopped.Load() || IsDone(done) {
				return false
			}
			batch.Reset()
			s.fillBatch(batch, proj, sel, sc)
			if !fn(w, batch) {
				stopped.Store(true)
				return false
			}
			return true
		}
		for !stopped.Load() && !IsDone(done) {
			z := int(cursor.Add(1)) - 1
			if z >= nz {
				break
			}
			if !s.scanZones(z, z+1, readTS, self, preds, sc, &local, emit) {
				break
			}
		}
		return local
	}
	if workers <= 1 {
		if nz > 0 {
			total.merge(runWorker(0))
		}
		return total
	}
	var (
		wg      sync.WaitGroup
		statsMu sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := runWorker(w)
			statsMu.Lock()
			total.merge(local)
			statsMu.Unlock()
		}(w)
	}
	wg.Wait()
	return total
}

// scanZones scans zones [zlo, zhi): zone-map pruning, visibility filter,
// predicate kernels, then emit(sel) with the surviving physical row
// indexes. It returns false when emit stopped the scan. Stats accumulate
// everything except ZonesTotal (the driver sets that).
func (s *Segment) scanZones(zlo, zhi int, readTS, self uint64, preds []Predicate, sc *scanScratch, stats *ScanStats, emit func(sel []int) bool) bool {
	sel := sc.sel
	defer func() { sc.sel = sel[:0] }()
zones:
	for z := zlo; z < zhi; z++ {
		for _, p := range preds {
			if !zoneCanMatch(p, s.zones[p.Col][z]) {
				stats.ZonesPruned++
				continue zones
			}
		}
		lo, hi := z*ZoneSize, (z+1)*ZoneSize
		if hi > s.n {
			hi = s.n
		}
		stats.RowsScanned += hi - lo
		// Visibility filter first (cheap atomic load).
		sel = sel[:0]
		for i := lo; i < hi; i++ {
			if s.RowVisible(i, readTS, self) {
				sel = append(sel, i)
			} else {
				stats.RowsConcealed++
			}
		}
		// Predicate kernels narrow the selection column-at-a-time.
		for _, p := range preds {
			if len(sel) == 0 {
				break
			}
			sel = s.filterSel(p, sel)
		}
		if len(sel) == 0 {
			continue
		}
		stats.RowsMatched += len(sel)
		if !emit(sel) {
			return false
		}
	}
	return true
}

func (s *Segment) projSchema(proj []int) *types.Schema {
	cols := make([]types.Column, len(proj))
	for i, ci := range proj {
		cols[i] = s.schema.Cols[ci]
	}
	return &types.Schema{Cols: cols}
}

// filterSel narrows sel to rows matching p, using typed kernels to avoid
// a Value materialization per row.
func (s *Segment) filterSel(p Predicate, sel []int) []int {
	out := sel[:0]
	switch c := s.cols[p.Col].(type) {
	case *intColumn:
		if !p.Val.IsNumeric() {
			return out
		}
		// Fast path for int comparison against an int literal.
		if p.Val.Typ == types.Int64 {
			v := p.Val.I
			for _, i := range sel {
				if c.nulls.IsNull(i) {
					continue
				}
				if cmpMatch(p.Op, c.enc.Get(i), v) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if c.nulls.IsNull(i) {
				continue
			}
			if p.Matches(types.NewInt(c.enc.Get(i))) {
				out = append(out, i)
			}
		}
		return out
	case *floatColumn:
		for _, i := range sel {
			if c.nulls.IsNull(i) {
				continue
			}
			if p.Matches(types.NewFloat(c.vals[i])) {
				out = append(out, i)
			}
		}
		return out
	case *stringColumn:
		if p.Val.Typ != types.String {
			return out
		}
		// Code-domain evaluation via the order-preserving dictionary:
		// translate the predicate into a code range once, then compare
		// packed codes — no string materialization.
		loCode, hiCode, ok := stringPredCodeRange(c.dict, p)
		if !ok {
			return out
		}
		neCode := int64(-1)
		if p.Op == OpNe {
			if code, found := c.dict.Code(p.Val.S); found {
				neCode = int64(code)
			} else {
				// Value absent: every non-null row matches.
				for _, i := range sel {
					if c.nulls.IsNull(i) {
						continue
					}
					out = append(out, i)
				}
				return out
			}
		}
		for _, i := range sel {
			if c.nulls.IsNull(i) {
				continue
			}
			code := c.codes.Get(i)
			if p.Op == OpNe {
				if int64(code) != neCode {
					out = append(out, i)
				}
				continue
			}
			if code >= loCode && code < hiCode {
				out = append(out, i)
			}
		}
		return out
	case *boolColumn:
		for _, i := range sel {
			if c.nulls.IsNull(i) {
				continue
			}
			if p.Matches(types.NewBool(c.bits.Get(i) != 0)) {
				out = append(out, i)
			}
		}
		return out
	default:
		for _, i := range sel {
			if p.Matches(s.cols[p.Col].get(i)) {
				out = append(out, i)
			}
		}
		return out
	}
}

func cmpMatch(op Op, a, b int64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

// stringPredCodeRange converts a string predicate into a half-open code
// range [lo, hi). For OpNe it returns the full range (the caller handles
// exclusion). ok is false when no code can match.
func stringPredCodeRange(dict interface {
	Size() int
	LowerBound(string) int
	UpperBound(string) int
}, p Predicate) (lo, hi uint64, ok bool) {
	n := uint64(dict.Size())
	switch p.Op {
	case OpEq:
		l := uint64(dict.LowerBound(p.Val.S))
		h := uint64(dict.UpperBound(p.Val.S))
		return l, h, l < h
	case OpNe:
		return 0, n, n > 0
	case OpLt:
		return 0, uint64(dict.LowerBound(p.Val.S)), dict.LowerBound(p.Val.S) > 0
	case OpLe:
		return 0, uint64(dict.UpperBound(p.Val.S)), dict.UpperBound(p.Val.S) > 0
	case OpGt:
		l := uint64(dict.UpperBound(p.Val.S))
		return l, n, l < n
	case OpGe:
		l := uint64(dict.LowerBound(p.Val.S))
		return l, n, l < n
	default:
		return 0, 0, false
	}
}

// fillBatch materializes the projected survivors of one zone into batch
// using the typed bulk appenders.
func (s *Segment) fillBatch(batch *types.Batch, proj []int, sel []int, sc *scanScratch) {
	for bi, ci := range proj {
		fillColumn(batch.Cols[bi], s.cols[ci], sel, sc)
	}
}

// fillColumn gathers the selected rows of src into dst. Int columns
// bulk-decode through the frame-of-reference coder, floats gather
// straight from the raw array, and strings/bools decode into scratch
// first — in every case the null bits travel as a word-packed mask, not
// per-row Value boxing.
func fillColumn(dst *types.Vector, src column, sel []int, sc *scanScratch) {
	switch c := src.(type) {
	case *intColumn:
		sc.ints = c.enc.Gather(sel, sc.ints)
		dst.AppendInts(sc.ints, gatherNulls(c.nulls, sel, sc), nil)
	case *floatColumn:
		dst.AppendFloats(c.vals, c.nulls, sel)
	case *stringColumn:
		if cap(sc.strs) < len(sel) {
			sc.strs = make([]string, len(sel))
		}
		sc.strs = sc.strs[:len(sel)]
		sc.codes = c.codes.Gather(sel, sc.codes)
		for k, code := range sc.codes {
			if c.nulls.IsNull(sel[k]) {
				sc.strs[k] = ""
				continue
			}
			sc.strs[k] = c.dict.Value(int(code))
		}
		dst.AppendStrings(sc.strs, gatherNulls(c.nulls, sel, sc), nil)
	case *boolColumn:
		sc.codes = c.bits.Gather(sel, sc.codes)
		if cap(sc.ints) < len(sel) {
			sc.ints = make([]int64, len(sel))
		}
		sc.ints = sc.ints[:len(sel)]
		for k, b := range sc.codes {
			sc.ints[k] = int64(b)
		}
		dst.AppendInts(sc.ints, gatherNulls(c.nulls, sel, sc), nil)
	default:
		for _, i := range sel {
			dst.Append(src.get(i))
		}
	}
}

// gatherNulls projects the full-domain mask onto sel, reusing the
// scratch mask; it returns nil when no selected row is null.
func gatherNulls(m *types.NullMask, sel []int, sc *scanScratch) *types.NullMask {
	if !m.AnyNull() {
		return nil
	}
	if sc.nulls == nil {
		sc.nulls = types.NewNullMask(0)
	}
	sc.nulls.Reset()
	any := false
	for _, i := range sel {
		null := m.IsNull(i)
		any = any || null
		sc.nulls.Append(null)
	}
	if !any {
		return nil
	}
	return sc.nulls
}
