package colstore

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/types"
)

// Op is a comparison operator for pushed-down predicates.
type Op uint8

// Predicate operators. OpIsNull/OpIsNotNull test nullness and ignore
// the predicate value entirely.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIsNull
	OpIsNotNull
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpIsNull:
		return "IS NULL"
	case OpIsNotNull:
		return "IS NOT NULL"
	default:
		return "?"
	}
}

// Predicate is a single-column comparison pushed into the scan. A scan
// evaluates the conjunction of its predicates. For OpIsNull and
// OpIsNotNull, Val is ignored.
type Predicate struct {
	Col int
	Op  Op
	Val types.Value
}

// Matches evaluates the predicate against a value (NULL never matches
// a comparison; the null tests match on nullness alone).
func (p Predicate) Matches(v types.Value) bool {
	switch p.Op {
	case OpIsNull:
		return v.Null
	case OpIsNotNull:
		return !v.Null
	}
	if v.Null || p.Val.Null {
		return false
	}
	c := types.Compare(v, p.Val)
	return opMatchesCmp(p.Op, c)
}

// opMatchesCmp folds a three-way comparison result through a comparison
// operator.
func opMatchesCmp(op Op, c int) bool {
	switch op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// zoneCanMatch reports whether a zone summary could contain a row
// matching p. This is the prune test applied per zone AND — via the
// folded segment summary — per segment, before any morsel is dealt
// (the paper's "storage index"/"synopsis" skip). All-null ranges are
// detected by NullCount == Rows, never by a sentinel min/max.
func zoneCanMatch(p Predicate, z Zone) bool {
	switch p.Op {
	case OpIsNull:
		return z.NullCount > 0
	case OpIsNotNull:
		return z.NullCount < z.Rows
	}
	if p.Val.Null {
		return false
	}
	if z.AllNull() {
		return false // no non-null value: no comparison can match
	}
	cMin := types.Compare(z.Min, p.Val)
	cMax := types.Compare(z.Max, p.Val)
	switch p.Op {
	case OpEq:
		return cMin <= 0 && cMax >= 0
	case OpNe:
		return !(cMin == 0 && cMax == 0)
	case OpLt:
		return cMin < 0
	case OpLe:
		return cMin <= 0
	case OpGt:
		return cMax > 0
	case OpGe:
		return cMax >= 0
	default:
		return true
	}
}

// canMatch reports whether any row of the segment could satisfy the
// conjunction of preds, consulting the per-segment zone summaries and,
// for dictionary-encoded columns, dictionary membership: an equality
// literal absent from the dictionary excludes every row of the segment
// even when it falls inside [min, max].
func (s *Segment) canMatch(preds []Predicate) bool {
	for _, p := range preds {
		if !zoneCanMatch(p, s.summary[p.Col]) {
			return false
		}
		if p.Op != OpEq || p.Val.Null {
			continue
		}
		switch c := s.cols[p.Col].(type) {
		case *stringColumn:
			if p.Val.Typ == types.String {
				if _, ok := c.dict.Code(p.Val.S); !ok {
					return false
				}
			}
		case *intDictColumn:
			if p.Val.Typ == types.Int64 {
				if _, ok := c.dict.Code(p.Val.I); !ok {
					return false
				}
			}
		}
	}
	return true
}

// CanMatch is the exported prune test (planner selectivity probes and
// tests); it mirrors exactly what the scan consults before dealing
// morsels.
func (s *Segment) CanMatch(preds []Predicate) bool { return s.canMatch(preds) }

// IsDone reports (without blocking) whether the cancellation channel is
// closed; a nil channel never cancels. Scan drivers poll it between
// zones/batches.
func IsDone(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// ScanStats reports the pruning behaviour of one scan.
//
// RowsDecoded counts column VALUES decoded or gathered from encoded
// storage: filter columns decode once per surviving selection position,
// projected columns only for rows that passed every predicate — so on a
// selective scan RowsDecoded ≪ RowsScanned × columns, which is the
// late-materialization win made observable.
type ScanStats struct {
	SegmentsTotal  int
	SegmentsPruned int
	ZonesTotal     int
	ZonesPruned    int
	RowsScanned    int
	RowsMatched    int
	RowsConcealed  int
	RowsDecoded    int
}

// merge folds o into s (SegmentsTotal and ZonesTotal are set by the
// scan driver, not accumulated per zone range).
func (s *ScanStats) merge(o ScanStats) {
	s.SegmentsPruned += o.SegmentsPruned
	s.ZonesPruned += o.ZonesPruned
	s.RowsScanned += o.RowsScanned
	s.RowsMatched += o.RowsMatched
	s.RowsConcealed += o.RowsConcealed
	s.RowsDecoded += o.RowsDecoded
}

// Add accumulates o into s including the driver-owned totals — the
// cross-scan aggregation the engine's per-table counters use.
func (s *ScanStats) Add(o ScanStats) {
	s.SegmentsTotal += o.SegmentsTotal
	s.ZonesTotal += o.ZonesTotal
	s.merge(o)
}

// scanScratch holds the reusable buffers of one scanning goroutine:
// the selection vector the predicate kernels narrow, the gather
// buffers zone materialization decodes into, and the projected null
// mask. One scratch serves a whole scan, so steady-state zone
// materialization allocates nothing.
type scanScratch struct {
	sel   []int
	ints  []int64
	codes []uint64
	strs  []string
	nulls *types.NullMask
}

// Scan streams the projection proj of rows matching all predicates and
// visible at (readTS, self), one batch per zone, to fn; fn returning
// false stops the scan. It returns pruning statistics.
//
// The scan is filter-then-gather: the per-segment zone map is consulted
// first (a fully excluded segment does no per-zone work at all), then
// per-zone maps prune, then each predicate narrows a selection vector
// over bulk-decoded filter-column values — dictionary predicates
// compare raw codes and never materialize strings — and only rows that
// survive every predicate have their projected columns gathered.
//
// Each delivered batch is freshly allocated and may be retained by fn;
// the pooled, transient-batch variant is ScanParallel.
func (s *Segment) Scan(readTS, self uint64, proj []int, preds []Predicate, fn func(b *types.Batch) bool) ScanStats {
	var stats ScanStats
	if s.n == 0 {
		return stats
	}
	nz := s.NumZones()
	stats.SegmentsTotal = 1
	stats.ZonesTotal = nz
	if !s.canMatch(preds) {
		stats.SegmentsPruned = 1
		stats.ZonesPruned = nz
		return stats
	}
	projSchema := s.projSchema(proj)
	sc := &scanScratch{sel: make([]int, 0, ZoneSize)}
	emit := func(sel []int) bool {
		batch := types.NewBatch(projSchema, len(sel))
		s.fillBatch(batch, proj, sel, sc, &stats)
		return fn(batch)
	}
	s.scanZones(0, nz, readTS, self, preds, sc, &stats, emit)
	return stats
}

// ScanParallel is the morsel-parallel variant of Scan: zones are dealt
// to a bounded pool of workers through an atomic cursor, each worker
// narrows its own selection vector and materializes survivors into
// batches drawn from a per-worker BatchPool, and fn observes one batch
// at a time under a mutex (zone order is not preserved). The batch
// passed to fn is pooled: it is valid only until fn returns, so
// retainers must Copy it. Stats are merged across workers.
//
// done, when non-nil, cancels the scan: workers check it between zones
// (and before delivering a batch) and exit promptly once it is closed,
// so a cancelled query releases its morsel workers within one zone's
// worth of work. A nil done never cancels.
func (s *Segment) ScanParallel(readTS, self uint64, proj []int, preds []Predicate, workers int, done <-chan struct{}, fn func(b *types.Batch) bool) ScanStats {
	nz := (s.n + ZoneSize - 1) / ZoneSize
	if workers > nz {
		workers = nz
	}
	if workers <= 1 {
		if done == nil {
			return s.Scan(readTS, self, proj, preds, fn)
		}
		return s.Scan(readTS, self, proj, preds, func(b *types.Batch) bool {
			select {
			case <-done:
				return false
			default:
			}
			return fn(b)
		})
	}
	// Funnel the per-worker scan through one mutex so fn observes a
	// single batch at a time (the legacy single-consumer contract; the
	// exec pipeline driver consumes per-worker instead).
	var (
		deliver sync.Mutex
		stopped bool
	)
	return s.ScanParallelWorkers(readTS, self, proj, preds, workers, done, func(_ int, b *types.Batch) bool {
		deliver.Lock()
		defer deliver.Unlock()
		if stopped || IsDone(done) {
			return false
		}
		if !fn(b) {
			stopped = true
			return false
		}
		return true
	})
}

// ScanParallelWorkers is the per-worker morsel scan beneath ScanParallel
// and the exec pipeline driver: zones are dealt to up to workers
// goroutines through an atomic cursor and fn is invoked CONCURRENTLY —
// one call per delivered batch, from the goroutine of the worker that
// produced it, carrying that worker's id (0..workers-1). There is no
// cross-worker serialization; callers own per-worker sinks (thread-local
// aggregation state, per-worker build stores). Each delivered batch is
// worker-owned and valid only until fn returns. fn returning false stops
// the whole scan. Stats merge across workers; done cancels between zones
// as in ScanParallel. All workers have exited when the call returns.
//
// The per-segment zone map is consulted BEFORE any worker is started or
// morsel dealt: a segment whose summaries exclude the predicates costs
// one map probe, no goroutines, and no decoded bytes.
//
//oadb:allow-ctxscan cancellation is the done channel (hot path avoids ctx plumbing per zone); callers thread ctx.Done() into done
func (s *Segment) ScanParallelWorkers(readTS, self uint64, proj []int, preds []Predicate, workers int, done <-chan struct{}, fn func(worker int, b *types.Batch) bool) ScanStats {
	var total ScanStats
	if s.n == 0 {
		return total
	}
	nz := s.NumZones()
	if workers > nz {
		workers = nz
	}
	total.SegmentsTotal = 1
	total.ZonesTotal = nz
	if !s.canMatch(preds) {
		total.SegmentsPruned = 1
		total.ZonesPruned = nz
		return total
	}
	projSchema := s.projSchema(proj)
	var (
		cursor  atomic.Int64
		stopped atomic.Bool
	)
	runWorker := func(w int) ScanStats {
		sc := &scanScratch{sel: make([]int, 0, ZoneSize)}
		batch := types.NewBatch(projSchema, ZoneSize)
		var local ScanStats
		emit := func(sel []int) bool {
			if stopped.Load() || IsDone(done) {
				return false
			}
			batch.Reset()
			s.fillBatch(batch, proj, sel, sc, &local)
			if !fn(w, batch) {
				stopped.Store(true)
				return false
			}
			return true
		}
		for !stopped.Load() && !IsDone(done) {
			z := int(cursor.Add(1)) - 1
			if z >= nz {
				break
			}
			if !s.scanZones(z, z+1, readTS, self, preds, sc, &local, emit) {
				break
			}
		}
		return local
	}
	if workers <= 1 {
		total.merge(runWorker(0))
		return total
	}
	var (
		wg      sync.WaitGroup
		statsMu sync.Mutex
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := runWorker(w)
			statsMu.Lock()
			total.merge(local)
			statsMu.Unlock()
		}(w)
	}
	wg.Wait()
	return total
}

// scanZones scans zones [zlo, zhi): zone-map pruning, visibility filter,
// predicate kernels, then emit(sel) with the surviving physical row
// indexes. It returns false when emit stopped the scan. Stats accumulate
// everything except the driver-owned totals.
func (s *Segment) scanZones(zlo, zhi int, readTS, self uint64, preds []Predicate, sc *scanScratch, stats *ScanStats, emit func(sel []int) bool) bool {
	sel := sc.sel
	defer func() { sc.sel = sel[:0] }()
zones:
	for z := zlo; z < zhi; z++ {
		for _, p := range preds {
			if !zoneCanMatch(p, s.zones[p.Col][z]) {
				stats.ZonesPruned++
				continue zones
			}
		}
		lo, hi := z*ZoneSize, (z+1)*ZoneSize
		if hi > s.n {
			hi = s.n
		}
		stats.RowsScanned += hi - lo
		// Visibility filter first (cheap atomic load).
		sel = sel[:0]
		for i := lo; i < hi; i++ {
			if s.RowVisible(i, readTS, self) {
				sel = append(sel, i)
			} else {
				stats.RowsConcealed++
			}
		}
		// Predicate kernels narrow the selection column-at-a-time over
		// bulk-decoded filter columns; projected columns are gathered
		// only for the rows that survive every predicate (emit).
		for _, p := range preds {
			if len(sel) == 0 {
				break
			}
			sel = s.filterSel(p, sel, sc, stats)
		}
		if len(sel) == 0 {
			continue
		}
		stats.RowsMatched += len(sel)
		if !emit(sel) {
			return false
		}
	}
	return true
}

func (s *Segment) projSchema(proj []int) *types.Schema {
	cols := make([]types.Column, len(proj))
	for i, ci := range proj {
		cols[i] = s.schema.Cols[ci]
	}
	return &types.Schema{Cols: cols}
}

// filterSel narrows sel to rows matching p with vectorized typed
// kernels: the filter column is bulk-decoded (or its raw codes
// bulk-gathered — dictionary predicates never materialize values) for
// exactly the positions in sel, then a tight typed loop narrows the
// selection. No types.Value is boxed per row on any typed path.
func (s *Segment) filterSel(p Predicate, sel []int, sc *scanScratch, stats *ScanStats) []int {
	col := s.cols[p.Col]
	nulls := col.nullMask()
	// Null tests need only the mask — no decode at all.
	switch p.Op {
	case OpIsNull:
		out := sel[:0]
		if !nulls.AnyNull() {
			return out
		}
		for _, i := range sel {
			if nulls.IsNull(i) {
				out = append(out, i)
			}
		}
		return out
	case OpIsNotNull:
		if !nulls.AnyNull() {
			return sel
		}
		out := sel[:0]
		for _, i := range sel {
			if !nulls.IsNull(i) {
				out = append(out, i)
			}
		}
		return out
	}
	if p.Val.Null {
		return sel[:0]
	}
	switch c := col.(type) {
	case *intColumn:
		if !p.Val.IsNumeric() {
			return sel[:0]
		}
		sc.ints = c.enc.Gather(sel, sc.ints)
		stats.RowsDecoded += len(sel)
		return filterInts(p, sc.ints, nulls, sel)
	case *intDictColumn:
		if !p.Val.IsNumeric() {
			return sel[:0]
		}
		sc.codes = c.codes.Gather(sel, sc.codes)
		stats.RowsDecoded += len(sel)
		if p.Val.Typ == types.Int64 {
			// Code-domain rewrite: =/<> become a single code test,
			// ranges a half-open code-range test via the sorted
			// dictionary — values are never reconstructed.
			ne := int64(-1)
			if p.Op == OpNe {
				if code, found := c.dict.Code(p.Val.I); found {
					ne = int64(code)
				}
			}
			lo, hi, ok := predCodeRange[int64](c.dict, p.Op, p.Val.I)
			if !ok {
				return sel[:0]
			}
			return filterDictCodes(p.Op, sc.codes, lo, hi, ne, nulls, sel)
		}
		// Non-int numeric literal: decode through the (in-cache)
		// dictionary values array, then the typed int kernel.
		sc.ints = decodeIntCodes(c.dict, sc.codes, sc.ints)
		return filterInts(p, sc.ints, nulls, sel)
	case *floatColumn:
		stats.RowsDecoded += len(sel)
		if !p.Val.IsNumeric() {
			return filterGeneric(p, col, sel)
		}
		f := p.Val.AsFloat()
		out := sel[:0]
		for _, i := range sel {
			if nulls.IsNull(i) {
				continue
			}
			if opMatchesCmp(p.Op, cmpFloat(c.vals[i], f)) {
				out = append(out, i)
			}
		}
		return out
	case *stringColumn:
		if p.Val.Typ != types.String {
			return sel[:0]
		}
		ne := int64(-1)
		if p.Op == OpNe {
			if code, found := c.dict.Code(p.Val.S); found {
				ne = int64(code)
			}
		}
		lo, hi, ok := predCodeRange[string](c.dict, p.Op, p.Val.S)
		if !ok {
			return sel[:0]
		}
		sc.codes = c.codes.Gather(sel, sc.codes)
		stats.RowsDecoded += len(sel)
		return filterDictCodes(p.Op, sc.codes, lo, hi, ne, nulls, sel)
	case *boolColumn:
		sc.codes = c.bits.Gather(sel, sc.codes)
		stats.RowsDecoded += len(sel)
		out := sel[:0]
		for k, i := range sel {
			if nulls.IsNull(i) {
				continue
			}
			if p.Matches(types.NewBool(sc.codes[k] != 0)) {
				out = append(out, i)
			}
		}
		return out
	default:
		stats.RowsDecoded += len(sel)
		return filterGeneric(p, col, sel)
	}
}

// filterGeneric is the per-row fallback for exotic column/literal
// pairings; typed kernels handle every hot combination.
func filterGeneric(p Predicate, col column, sel []int) []int {
	out := sel[:0]
	for _, i := range sel {
		if p.Matches(col.get(i)) {
			out = append(out, i)
		}
	}
	return out
}

// filterInts narrows sel over bulk-decoded int64 values: an integer
// literal compares in the int domain, any other numeric literal through
// exact float comparison — mirroring types.Compare without boxing.
func filterInts(p Predicate, vals []int64, nulls *types.NullMask, sel []int) []int {
	out := sel[:0]
	if p.Val.Typ == types.Int64 {
		v := p.Val.I
		if !nulls.AnyNull() {
			for k, i := range sel {
				if cmpMatch(p.Op, vals[k], v) {
					out = append(out, i)
				}
			}
			return out
		}
		for k, i := range sel {
			if nulls.IsNull(i) {
				continue
			}
			if cmpMatch(p.Op, vals[k], v) {
				out = append(out, i)
			}
		}
		return out
	}
	f := p.Val.AsFloat()
	for k, i := range sel {
		if nulls.IsNull(i) {
			continue
		}
		if opMatchesCmp(p.Op, cmpFloat(float64(vals[k]), f)) {
			out = append(out, i)
		}
	}
	return out
}

// filterDictCodes narrows sel in the code domain over bulk-gathered
// codes. For OpNe, ne is the excluded code, or -1 when the literal is
// absent from the dictionary (every non-null row matches); for every
// other operator rows with lo <= code < hi survive.
func filterDictCodes(op Op, codes []uint64, lo, hi uint64, ne int64, nulls *types.NullMask, sel []int) []int {
	out := sel[:0]
	if op == OpNe {
		for k, i := range sel {
			if nulls.IsNull(i) {
				continue
			}
			if ne < 0 || codes[k] != uint64(ne) {
				out = append(out, i)
			}
		}
		return out
	}
	if !nulls.AnyNull() {
		for k, i := range sel {
			if c := codes[k]; c >= lo && c < hi {
				out = append(out, i)
			}
		}
		return out
	}
	for k, i := range sel {
		if nulls.IsNull(i) {
			continue
		}
		if c := codes[k]; c >= lo && c < hi {
			out = append(out, i)
		}
	}
	return out
}

// decodeIntCodes expands dictionary codes to values through the sorted
// values array (an L1-resident gather, no allocation in steady state).
func decodeIntCodes(dict *compress.IntDictionary, codes []uint64, dst []int64) []int64 {
	if cap(dst) < len(codes) {
		dst = make([]int64, len(codes))
	}
	dst = dst[:len(codes)]
	for k, code := range codes {
		dst[k] = dict.Value(int(code))
	}
	return dst
}

func cmpMatch(op Op, a, b int64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

// cmpFloat mirrors types.Compare's float ordering (NaN sorts below
// every non-NaN value) so kernel results match the boxed path exactly.
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	default:
		return 0
	}
}

// sortedDict is the order-preserving dictionary surface predCodeRange
// rewrites through: codes sort like values, so value comparisons become
// code-range tests via binary-search bounds.
type sortedDict[T any] interface {
	Size() int
	LowerBound(T) int
	UpperBound(T) int
}

// predCodeRange converts a comparison against an order-preserving
// dictionary into a half-open code range [lo, hi) using the sorted
// dictionary's bounds. For OpNe it returns the full range (the caller
// excludes the matching code). ok is false when no code can match, which
// callers turn into an immediate zone/segment skip.
func predCodeRange[T any](d sortedDict[T], op Op, v T) (lo, hi uint64, ok bool) {
	n := uint64(d.Size())
	switch op {
	case OpEq:
		l := uint64(d.LowerBound(v))
		h := uint64(d.UpperBound(v))
		return l, h, l < h
	case OpNe:
		return 0, n, n > 0
	case OpLt:
		h := uint64(d.LowerBound(v))
		return 0, h, h > 0
	case OpLe:
		h := uint64(d.UpperBound(v))
		return 0, h, h > 0
	case OpGt:
		l := uint64(d.UpperBound(v))
		return l, n, l < n
	case OpGe:
		l := uint64(d.LowerBound(v))
		return l, n, l < n
	default:
		return 0, 0, false
	}
}

// fillBatch materializes the projected survivors of one zone into batch
// using the typed bulk appenders — this runs strictly AFTER every
// predicate, so non-filter columns decode only for surviving rows
// (counted in stats.RowsDecoded).
func (s *Segment) fillBatch(batch *types.Batch, proj []int, sel []int, sc *scanScratch, stats *ScanStats) {
	for bi, ci := range proj {
		fillColumn(batch.Cols[bi], s.cols[ci], sel, sc)
	}
	stats.RowsDecoded += len(sel) * len(proj)
}

// fillColumn gathers the selected rows of src into dst. Int columns
// bulk-decode through the frame-of-reference coder (or the int
// dictionary), floats gather straight from the raw array, and
// strings/bools decode into scratch first — in every case the null bits
// travel as a word-packed mask, not per-row Value boxing.
func fillColumn(dst *types.Vector, src column, sel []int, sc *scanScratch) {
	switch c := src.(type) {
	case *intColumn:
		sc.ints = c.enc.Gather(sel, sc.ints)
		dst.AppendInts(sc.ints, gatherNulls(c.nulls, sel, sc), nil)
	case *intDictColumn:
		sc.codes = c.codes.Gather(sel, sc.codes)
		sc.ints = decodeIntCodes(c.dict, sc.codes, sc.ints)
		dst.AppendInts(sc.ints, gatherNulls(c.nulls, sel, sc), nil)
	case *floatColumn:
		dst.AppendFloats(c.vals, c.nulls, sel)
	case *stringColumn:
		if cap(sc.strs) < len(sel) {
			sc.strs = make([]string, len(sel))
		}
		sc.strs = sc.strs[:len(sel)]
		sc.codes = c.codes.Gather(sel, sc.codes)
		for k, code := range sc.codes {
			if c.nulls.IsNull(sel[k]) {
				sc.strs[k] = ""
				continue
			}
			sc.strs[k] = c.dict.Value(int(code))
		}
		dst.AppendStrings(sc.strs, gatherNulls(c.nulls, sel, sc), nil)
	case *boolColumn:
		sc.codes = c.bits.Gather(sel, sc.codes)
		if cap(sc.ints) < len(sel) {
			sc.ints = make([]int64, len(sel))
		}
		sc.ints = sc.ints[:len(sel)]
		for k, b := range sc.codes {
			sc.ints[k] = int64(b)
		}
		dst.AppendInts(sc.ints, gatherNulls(c.nulls, sel, sc), nil)
	default:
		for _, i := range sel {
			dst.Append(src.get(i))
		}
	}
}

// gatherNulls projects the full-domain mask onto sel, reusing the
// scratch mask; it returns nil when no selected row is null.
func gatherNulls(m *types.NullMask, sel []int, sc *scanScratch) *types.NullMask {
	if !m.AnyNull() {
		return nil
	}
	if sc.nulls == nil {
		sc.nulls = types.NewNullMask(0)
	}
	sc.nulls.Reset()
	any := false
	for _, i := range sel {
		null := m.IsNull(i)
		any = any || null
		sc.nulls.Append(null)
	}
	if !any {
		return nil
	}
	return sc.nulls
}
