package colstore

import (
	"repro/internal/types"
)

// Op is a comparison operator for pushed-down predicates.
type Op uint8

// Predicate operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String names the operator.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

// Predicate is a single-column comparison pushed into the scan. A scan
// evaluates the conjunction of its predicates.
type Predicate struct {
	Col int
	Op  Op
	Val types.Value
}

// Matches evaluates the predicate against a value (NULL never matches).
func (p Predicate) Matches(v types.Value) bool {
	if v.Null || p.Val.Null {
		return false
	}
	c := types.Compare(v, p.Val)
	switch p.Op {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		return false
	}
}

// zoneCanMatch reports whether a zone's [min,max] could contain a value
// matching p. This is the zone-map prune test (E11).
func zoneCanMatch(p Predicate, z Zone) bool {
	if p.Val.Null {
		return false
	}
	if z.Min.Null && z.Max.Null {
		return false // all-null zone matches no comparison
	}
	cMin := types.Compare(z.Min, p.Val)
	cMax := types.Compare(z.Max, p.Val)
	switch p.Op {
	case OpEq:
		return cMin <= 0 && cMax >= 0
	case OpNe:
		return !(cMin == 0 && cMax == 0)
	case OpLt:
		return cMin < 0
	case OpLe:
		return cMin <= 0
	case OpGt:
		return cMax > 0
	case OpGe:
		return cMax >= 0
	default:
		return true
	}
}

// ScanStats reports the pruning behaviour of one scan.
type ScanStats struct {
	ZonesTotal    int
	ZonesPruned   int
	RowsScanned   int
	RowsMatched   int
	RowsConcealed int
}

// Scan streams the projection proj of rows matching all predicates and
// visible at (readTS, self), one batch per zone, to fn; fn returning
// false stops the scan. It returns pruning statistics.
//
// Predicates are evaluated column-at-a-time per zone (vectorized in the
// batch-processing sense the tutorial attributes to HANA/BLU scans):
// zone maps prune first, then each predicate narrows a selection vector
// before the next runs, and only surviving rows are materialized.
func (s *Segment) Scan(readTS, self uint64, proj []int, preds []Predicate, fn func(b *types.Batch) bool) ScanStats {
	var stats ScanStats
	if s.n == 0 {
		return stats
	}
	nz := (s.n + ZoneSize - 1) / ZoneSize
	stats.ZonesTotal = nz
	projSchema := s.projSchema(proj)
	sel := make([]int, 0, ZoneSize)
zones:
	for z := 0; z < nz; z++ {
		for _, p := range preds {
			if !zoneCanMatch(p, s.zones[p.Col][z]) {
				stats.ZonesPruned++
				continue zones
			}
		}
		lo, hi := z*ZoneSize, (z+1)*ZoneSize
		if hi > s.n {
			hi = s.n
		}
		stats.RowsScanned += hi - lo
		// Visibility filter first (cheap atomic load).
		sel = sel[:0]
		for i := lo; i < hi; i++ {
			if s.RowVisible(i, readTS, self) {
				sel = append(sel, i)
			} else {
				stats.RowsConcealed++
			}
		}
		// Predicate kernels narrow the selection column-at-a-time.
		for _, p := range preds {
			if len(sel) == 0 {
				break
			}
			sel = s.filterSel(p, sel)
		}
		if len(sel) == 0 {
			continue
		}
		stats.RowsMatched += len(sel)
		batch := types.NewBatch(projSchema, len(sel))
		for bi, ci := range proj {
			fillColumn(batch.Cols[bi], s.cols[ci], sel)
		}
		if !fn(batch) {
			break
		}
	}
	return stats
}

func (s *Segment) projSchema(proj []int) *types.Schema {
	cols := make([]types.Column, len(proj))
	for i, ci := range proj {
		cols[i] = s.schema.Cols[ci]
	}
	return &types.Schema{Cols: cols}
}

// filterSel narrows sel to rows matching p, using typed kernels to avoid
// a Value materialization per row.
func (s *Segment) filterSel(p Predicate, sel []int) []int {
	out := sel[:0]
	switch c := s.cols[p.Col].(type) {
	case *intColumn:
		if !p.Val.IsNumeric() {
			return out
		}
		// Fast path for int comparison against an int literal.
		if p.Val.Typ == types.Int64 {
			v := p.Val.I
			for _, i := range sel {
				if c.nulls != nil && c.nulls[i] {
					continue
				}
				if cmpMatch(p.Op, c.enc.Get(i), v) {
					out = append(out, i)
				}
			}
			return out
		}
		for _, i := range sel {
			if c.nulls != nil && c.nulls[i] {
				continue
			}
			if p.Matches(types.NewInt(c.enc.Get(i))) {
				out = append(out, i)
			}
		}
		return out
	case *floatColumn:
		for _, i := range sel {
			if c.nulls != nil && c.nulls[i] {
				continue
			}
			if p.Matches(types.NewFloat(c.vals[i])) {
				out = append(out, i)
			}
		}
		return out
	case *stringColumn:
		if p.Val.Typ != types.String {
			return out
		}
		// Code-domain evaluation via the order-preserving dictionary:
		// translate the predicate into a code range once, then compare
		// packed codes — no string materialization.
		loCode, hiCode, ok := stringPredCodeRange(c.dict, p)
		if !ok {
			return out
		}
		neCode := int64(-1)
		if p.Op == OpNe {
			if code, found := c.dict.Code(p.Val.S); found {
				neCode = int64(code)
			} else {
				// Value absent: every non-null row matches.
				for _, i := range sel {
					if c.nulls != nil && c.nulls[i] {
						continue
					}
					out = append(out, i)
				}
				return out
			}
		}
		for _, i := range sel {
			if c.nulls != nil && c.nulls[i] {
				continue
			}
			code := c.codes.Get(i)
			if p.Op == OpNe {
				if int64(code) != neCode {
					out = append(out, i)
				}
				continue
			}
			if code >= loCode && code < hiCode {
				out = append(out, i)
			}
		}
		return out
	case *boolColumn:
		for _, i := range sel {
			if c.nulls != nil && c.nulls[i] {
				continue
			}
			if p.Matches(types.NewBool(c.bits.Get(i) != 0)) {
				out = append(out, i)
			}
		}
		return out
	default:
		for _, i := range sel {
			if p.Matches(s.cols[p.Col].get(i)) {
				out = append(out, i)
			}
		}
		return out
	}
}

func cmpMatch(op Op, a, b int64) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a < b
	case OpLe:
		return a <= b
	case OpGt:
		return a > b
	case OpGe:
		return a >= b
	default:
		return false
	}
}

// stringPredCodeRange converts a string predicate into a half-open code
// range [lo, hi). For OpNe it returns the full range (the caller handles
// exclusion). ok is false when no code can match.
func stringPredCodeRange(dict interface {
	Size() int
	LowerBound(string) int
	UpperBound(string) int
}, p Predicate) (lo, hi uint64, ok bool) {
	n := uint64(dict.Size())
	switch p.Op {
	case OpEq:
		l := uint64(dict.LowerBound(p.Val.S))
		h := uint64(dict.UpperBound(p.Val.S))
		return l, h, l < h
	case OpNe:
		return 0, n, n > 0
	case OpLt:
		return 0, uint64(dict.LowerBound(p.Val.S)), dict.LowerBound(p.Val.S) > 0
	case OpLe:
		return 0, uint64(dict.UpperBound(p.Val.S)), dict.UpperBound(p.Val.S) > 0
	case OpGt:
		l := uint64(dict.UpperBound(p.Val.S))
		return l, n, l < n
	case OpGe:
		l := uint64(dict.LowerBound(p.Val.S))
		return l, n, l < n
	default:
		return 0, 0, false
	}
}

func fillColumn(dst *types.Vector, src column, sel []int) {
	switch c := src.(type) {
	case *intColumn:
		for _, i := range sel {
			if c.nulls != nil && c.nulls[i] {
				dst.Append(types.NewNull(types.Int64))
				continue
			}
			dst.Ints = append(dst.Ints, c.enc.Get(i))
			if dst.Nulls != nil {
				dst.Nulls = append(dst.Nulls, false)
			}
		}
	case *floatColumn:
		for _, i := range sel {
			if c.nulls != nil && c.nulls[i] {
				dst.Append(types.NewNull(types.Float64))
				continue
			}
			dst.Floats = append(dst.Floats, c.vals[i])
			if dst.Nulls != nil {
				dst.Nulls = append(dst.Nulls, false)
			}
		}
	default:
		for _, i := range sel {
			dst.Append(src.get(i))
		}
	}
}
