// Package colstore implements the read-optimized half of the dual-format
// architecture: immutable, dictionary-compressed column segments with
// zone maps ("storage indexes" in Oracle DBIM terms, "synopses" in BLU
// terms), per-row MVCC delete timestamps, and a key index so the
// transactional path can invalidate merged rows.
//
// A segment is built by the delta-merge at a chosen snapshot (createTS):
// it contains exactly the rows visible at that snapshot, in primary-key
// order. Updates and deletes after the merge mark the segment row's
// delete timestamp and put any replacement row in the row store, so one
// timestamp domain spans both formats — the tutorial's "both formats
// simultaneously active and transactionally consistent" (DBIM [22]).
package colstore

import (
	"fmt"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/txn"
	"repro/internal/types"
)

// ZoneSize is the number of rows summarized by one zone-map entry.
const ZoneSize = 1024

// Zone is the min/max summary of one column over one zone of rows.
type Zone struct {
	Min, Max types.Value
	HasNull  bool
}

// column is an encoded column of a segment.
type column interface {
	// get materializes the value at row i.
	get(i int) types.Value
	// sizeBytes is the encoded payload size.
	sizeBytes() int
}

// intColumn stores int64s frame-of-reference coded.
type intColumn struct {
	enc   *compress.FrameOfReference
	nulls *types.NullMask
}

func (c *intColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.Int64)
	}
	return types.NewInt(c.enc.Get(i))
}
func (c *intColumn) sizeBytes() int { return c.enc.SizeBytes() + c.nulls.SizeBytes() }

// floatColumn stores float64s raw.
type floatColumn struct {
	vals  []float64
	nulls *types.NullMask
}

func (c *floatColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.Float64)
	}
	return types.NewFloat(c.vals[i])
}
func (c *floatColumn) sizeBytes() int { return len(c.vals)*8 + c.nulls.SizeBytes() }

// stringColumn stores strings as bit-packed codes into an
// order-preserving dictionary.
type stringColumn struct {
	dict  *compress.Dictionary
	codes *compress.BitPacked
	nulls *types.NullMask
}

func (c *stringColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.String)
	}
	return types.NewString(c.dict.Value(int(c.codes.Get(i))))
}
func (c *stringColumn) sizeBytes() int {
	sz := c.codes.SizeBytes() + c.nulls.SizeBytes()
	for i := 0; i < c.dict.Size(); i++ {
		sz += len(c.dict.Value(i))
	}
	return sz
}

// boolColumn stores booleans bit-packed.
type boolColumn struct {
	bits  *compress.BitPacked
	nulls *types.NullMask
}

func (c *boolColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.Bool)
	}
	return types.NewBool(c.bits.Get(i) != 0)
}
func (c *boolColumn) sizeBytes() int { return c.bits.SizeBytes() + c.nulls.SizeBytes() }

// Segment is an immutable compressed column segment.
type Segment struct {
	schema   *types.Schema
	createTS uint64
	n        int
	cols     []column
	zones    [][]Zone // zones[col][zone]
	// insTS[i] is the commit timestamp of the version merged into row i;
	// it lets snapshots older than the merge evaluate visibility exactly.
	insTS []uint64
	// delTS[i] is the MVCC end timestamp of row i (InfTS = live,
	// txn id = uncommitted delete, committed TS = deleted).
	delTS []atomic.Uint64
	// keyIdx maps key-hash -> candidate row indexes.
	keyIdx map[uint64][]int32
	// deleted counts committed deletions (merge-compaction heuristic).
	deleted atomic.Int64
}

// Builder accumulates rows (in primary-key order) and encodes a Segment.
type Builder struct {
	schema   *types.Schema
	createTS uint64
	rows     []types.Row
	insTS    []uint64
}

// NewBuilder starts a segment build at snapshot createTS.
func NewBuilder(schema *types.Schema, createTS uint64) *Builder {
	return &Builder{schema: schema, createTS: createTS}
}

// Add appends a row whose insert timestamp is the segment's createTS.
// Rows must arrive in primary-key order (the merge scans the row store
// in key order, so this holds naturally).
func (b *Builder) Add(row types.Row) { b.AddVersioned(row, b.createTS) }

// AddVersioned appends a row carrying the commit timestamp of the
// version it came from, preserving exact visibility for old snapshots.
func (b *Builder) AddVersioned(row types.Row, insTS uint64) {
	b.rows = append(b.rows, row)
	b.insTS = append(b.insTS, insTS)
}

// Len returns the number of rows added so far.
func (b *Builder) Len() int { return len(b.rows) }

// Build encodes the segment. The builder must not be reused.
func (b *Builder) Build() *Segment {
	n := len(b.rows)
	s := &Segment{
		schema:   b.schema,
		createTS: b.createTS,
		n:        n,
		cols:     make([]column, len(b.schema.Cols)),
		zones:    make([][]Zone, len(b.schema.Cols)),
		insTS:    append([]uint64(nil), b.insTS...),
		delTS:    make([]atomic.Uint64, n),
		keyIdx:   make(map[uint64][]int32, n),
	}
	for i := range s.delTS {
		s.delTS[i].Store(txn.InfTS)
	}
	for ci, col := range b.schema.Cols {
		s.cols[ci] = encodeColumn(col.Type, b.rows, ci)
		s.zones[ci] = buildZones(b.rows, ci)
	}
	for i, row := range b.rows {
		h := types.HashRow(row, b.schema.Key)
		s.keyIdx[h] = append(s.keyIdx[h], int32(i))
	}
	return s
}

func encodeColumn(t types.Type, rows []types.Row, ci int) column {
	n := len(rows)
	var nulls *types.NullMask
	noteNull := func(i int) {
		if nulls == nil {
			nulls = types.NewNullMask(n)
		}
		nulls.Set(i, true)
	}
	switch t {
	case types.Int64:
		vals := make([]int64, n)
		for i, r := range rows {
			if r[ci].Null {
				noteNull(i)
				continue
			}
			vals[i] = r[ci].I
		}
		return &intColumn{enc: compress.FOREncode(vals), nulls: nulls}
	case types.Float64:
		vals := make([]float64, n)
		for i, r := range rows {
			if r[ci].Null {
				noteNull(i)
				continue
			}
			vals[i] = r[ci].F
		}
		return &floatColumn{vals: vals, nulls: nulls}
	case types.String:
		raw := make([]string, n)
		for i, r := range rows {
			if r[ci].Null {
				noteNull(i)
				continue
			}
			raw[i] = r[ci].S
		}
		dict := compress.BuildDictionary(raw)
		codes, _ := dict.Encode(raw)
		maxCode := uint64(0)
		if dict.Size() > 0 {
			maxCode = uint64(dict.Size() - 1)
		}
		return &stringColumn{dict: dict, codes: compress.Pack(codes, compress.BitWidthFor(maxCode)), nulls: nulls}
	case types.Bool:
		vals := make([]uint64, n)
		for i, r := range rows {
			if r[ci].Null {
				noteNull(i)
				continue
			}
			if r[ci].I != 0 {
				vals[i] = 1
			}
		}
		return &boolColumn{bits: compress.Pack(vals, 1), nulls: nulls}
	default:
		panic(fmt.Sprintf("colstore: unsupported type %v", t))
	}
}

func buildZones(rows []types.Row, ci int) []Zone {
	n := len(rows)
	nz := (n + ZoneSize - 1) / ZoneSize
	zones := make([]Zone, nz)
	for z := 0; z < nz; z++ {
		lo, hi := z*ZoneSize, (z+1)*ZoneSize
		if hi > n {
			hi = n
		}
		first := true
		for i := lo; i < hi; i++ {
			v := rows[i][ci]
			if v.Null {
				zones[z].HasNull = true
				continue
			}
			if first {
				zones[z].Min, zones[z].Max = v, v
				first = false
				continue
			}
			if types.Compare(v, zones[z].Min) < 0 {
				zones[z].Min = v
			}
			if types.Compare(v, zones[z].Max) > 0 {
				zones[z].Max = v
			}
		}
		if first { // all-null zone
			zones[z].Min = types.NewNull(rows[0][ci].Typ)
			zones[z].Max = zones[z].Min
		}
	}
	return zones
}

// Schema returns the segment schema.
func (s *Segment) Schema() *types.Schema { return s.schema }

// CreateTS returns the snapshot the segment was merged at.
func (s *Segment) CreateTS() uint64 { return s.createTS }

// NumRows returns the physical row count (including deleted rows).
func (s *Segment) NumRows() int { return s.n }

// DeletedRows returns the committed-deleted row count.
func (s *Segment) DeletedRows() int { return int(s.deleted.Load()) }

// SizeBytes returns the encoded payload size across all columns.
func (s *Segment) SizeBytes() int {
	sz := 0
	for _, c := range s.cols {
		sz += c.sizeBytes()
	}
	return sz
}

// Get materializes column ci of row i.
func (s *Segment) Get(i, ci int) types.Value { return s.cols[ci].get(i) }

// Row materializes row i in full.
func (s *Segment) Row(i int) types.Row {
	r := make(types.Row, len(s.cols))
	for ci := range s.cols {
		r[ci] = s.cols[ci].get(i)
	}
	return r
}

// RowVisible reports whether row i is visible at (readTS, self): the
// merged version was committed at or before the snapshot and has not
// been deleted as of the snapshot. Because each row carries its insert
// timestamp, this is exact even for snapshots older than the merge.
func (s *Segment) RowVisible(i int, readTS, self uint64) bool {
	return txn.Visible(s.insTS[i], s.delTS[i].Load(), readTS, self)
}

// InsertTS returns row i's insert (commit) timestamp.
func (s *Segment) InsertTS(i int) uint64 { return s.insTS[i] }

// FindKey returns the segment row index holding key, or -1. Deleted rows
// are still found (the caller decides based on visibility).
func (s *Segment) FindKey(key types.Row) int {
	h := keyHashOf(key)
	for _, idx := range s.keyIdx[h] {
		if types.CompareKeys(s.keyRow(int(idx)), key) == 0 {
			return int(idx)
		}
	}
	return -1
}

func keyHashOf(key types.Row) uint64 {
	cols := make([]int, len(key))
	for i := range cols {
		cols[i] = i
	}
	return types.HashRow(key, cols)
}

func (s *Segment) keyRow(i int) types.Row {
	k := make(types.Row, len(s.schema.Key))
	for j, ci := range s.schema.Key {
		k[j] = s.cols[ci].get(i)
	}
	return k
}

// MarkDeleted takes the MVCC write lock on row i for transaction t
// (first-updater-wins) and registers commit/abort hooks. It returns
// txn.ErrConflict if another transaction holds the row or it was deleted
// after t's snapshot.
func (s *Segment) MarkDeleted(t *txn.Txn, i int) error {
	cur := s.delTS[i].Load()
	if cur == t.ID {
		return nil // already marked by us
	}
	if txn.IsCommittedTS(cur) {
		return txn.ErrConflict // already deleted (any committed delete conflicts a writer)
	}
	if cur != txn.InfTS {
		return txn.ErrConflict // another txn's uncommitted delete
	}
	if !s.delTS[i].CompareAndSwap(txn.InfTS, t.ID) {
		return txn.ErrConflict
	}
	t.OnCommit(func(ts uint64) {
		s.delTS[i].Store(ts)
		s.deleted.Add(1)
	})
	t.OnAbort(func() { s.delTS[i].Store(txn.InfTS) })
	return nil
}

// DeleteTS returns row i's current delete timestamp.
func (s *Segment) DeleteTS(i int) uint64 { return s.delTS[i].Load() }
