// Package colstore implements the read-optimized half of the dual-format
// architecture: immutable, dictionary-compressed column segments with
// zone maps ("storage indexes" in Oracle DBIM terms, "synopses" in BLU
// terms), per-row MVCC delete timestamps, and a key index so the
// transactional path can invalidate merged rows.
//
// A segment is built by the delta-merge at a chosen snapshot (createTS):
// it contains exactly the rows visible at that snapshot, in primary-key
// order. Updates and deletes after the merge mark the segment row's
// delete timestamp and put any replacement row in the row store, so one
// timestamp domain spans both formats — the tutorial's "both formats
// simultaneously active and transactionally consistent" (DBIM [22]).
package colstore

import (
	"fmt"
	"sync/atomic"

	"repro/internal/compress"
	"repro/internal/txn"
	"repro/internal/types"
)

// ZoneSize is the number of rows summarized by one zone-map entry.
const ZoneSize = 1024

// Zone is the min/max/null summary of one column over one range of
// rows. Rows is the physical row count of the range and NullCount the
// number of nulls in it, so an all-null range is detected by count
// (NullCount == Rows), never by a sentinel min/max: Min and Max are
// meaningful only when the range holds at least one non-null value.
// The same shape summarizes a ZoneSize range (the per-zone map) and a
// whole segment column (the per-segment map the scan consults before
// dealing any morsel).
type Zone struct {
	Min, Max  types.Value
	Rows      int
	NullCount int
}

// AllNull reports whether the summarized range holds no non-null value.
func (z Zone) AllNull() bool { return z.NullCount == z.Rows }

// column is an encoded column of a segment.
type column interface {
	// get materializes the value at row i.
	get(i int) types.Value
	// sizeBytes is the encoded payload size.
	sizeBytes() int
	// nullMask returns the column's null mask (nil-safe: may be nil).
	nullMask() *types.NullMask
}

// intColumn stores int64s frame-of-reference coded.
type intColumn struct {
	enc   *compress.FrameOfReference
	nulls *types.NullMask
}

func (c *intColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.Int64)
	}
	return types.NewInt(c.enc.Get(i))
}
func (c *intColumn) sizeBytes() int             { return c.enc.SizeBytes() + c.nulls.SizeBytes() }
func (c *intColumn) nullMask() *types.NullMask  { return c.nulls }

// intDictColumn stores int64s as bit-packed codes into an
// order-preserving int dictionary — chosen over frame-of-reference when
// the distinct count is far below the value range (status codes,
// warehouse ids), so predicates compare codes instead of values.
type intDictColumn struct {
	dict  *compress.IntDictionary
	codes *compress.BitPacked
	nulls *types.NullMask
}

func (c *intDictColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.Int64)
	}
	return types.NewInt(c.dict.Value(int(c.codes.Get(i))))
}
func (c *intDictColumn) sizeBytes() int {
	return c.codes.SizeBytes() + c.nulls.SizeBytes() + c.dict.Size()*8
}
func (c *intDictColumn) nullMask() *types.NullMask { return c.nulls }

// floatColumn stores float64s raw.
type floatColumn struct {
	vals  []float64
	nulls *types.NullMask
}

func (c *floatColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.Float64)
	}
	return types.NewFloat(c.vals[i])
}
func (c *floatColumn) sizeBytes() int            { return len(c.vals)*8 + c.nulls.SizeBytes() }
func (c *floatColumn) nullMask() *types.NullMask { return c.nulls }

// stringColumn stores strings as bit-packed codes into an
// order-preserving dictionary.
type stringColumn struct {
	dict  *compress.Dictionary
	codes *compress.BitPacked
	nulls *types.NullMask
}

func (c *stringColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.String)
	}
	return types.NewString(c.dict.Value(int(c.codes.Get(i))))
}
func (c *stringColumn) sizeBytes() int {
	sz := c.codes.SizeBytes() + c.nulls.SizeBytes()
	for i := 0; i < c.dict.Size(); i++ {
		sz += len(c.dict.Value(i))
	}
	return sz
}
func (c *stringColumn) nullMask() *types.NullMask { return c.nulls }

// boolColumn stores booleans bit-packed.
type boolColumn struct {
	bits  *compress.BitPacked
	nulls *types.NullMask
}

func (c *boolColumn) get(i int) types.Value {
	if c.nulls.IsNull(i) {
		return types.NewNull(types.Bool)
	}
	return types.NewBool(c.bits.Get(i) != 0)
}
func (c *boolColumn) sizeBytes() int            { return c.bits.SizeBytes() + c.nulls.SizeBytes() }
func (c *boolColumn) nullMask() *types.NullMask { return c.nulls }

// Segment is an immutable compressed column segment.
type Segment struct {
	schema   *types.Schema
	createTS uint64
	n        int
	cols     []column
	zones    [][]Zone // zones[col][zone]
	// summary[col] folds that column's zones into one segment-level
	// min/max/null-count — the map ScanParallelWorkers consults to skip
	// the whole segment before any morsel is dealt or worker woken.
	summary []Zone
	// insTS[i] is the commit timestamp of the version merged into row i;
	// it lets snapshots older than the merge evaluate visibility exactly.
	insTS []uint64
	// delTS[i] is the MVCC end timestamp of row i (InfTS = live,
	// txn id = uncommitted delete, committed TS = deleted).
	delTS []atomic.Uint64
	// keyIdx maps key-hash -> candidate row indexes.
	keyIdx map[uint64][]int32
	// deleted counts committed deletions (merge-compaction heuristic).
	deleted atomic.Int64
}

// Builder accumulates rows (in primary-key order) and encodes a Segment.
type Builder struct {
	schema   *types.Schema
	createTS uint64
	rows     []types.Row
	insTS    []uint64
}

// NewBuilder starts a segment build at snapshot createTS.
func NewBuilder(schema *types.Schema, createTS uint64) *Builder {
	return &Builder{schema: schema, createTS: createTS}
}

// Add appends a row whose insert timestamp is the segment's createTS.
// Rows must arrive in primary-key order (the merge scans the row store
// in key order, so this holds naturally).
func (b *Builder) Add(row types.Row) { b.AddVersioned(row, b.createTS) }

// AddVersioned appends a row carrying the commit timestamp of the
// version it came from, preserving exact visibility for old snapshots.
func (b *Builder) AddVersioned(row types.Row, insTS uint64) {
	b.rows = append(b.rows, row)
	b.insTS = append(b.insTS, insTS)
}

// Len returns the number of rows added so far.
func (b *Builder) Len() int { return len(b.rows) }

// Build encodes the segment. The builder must not be reused.
func (b *Builder) Build() *Segment {
	n := len(b.rows)
	s := &Segment{
		schema:   b.schema,
		createTS: b.createTS,
		n:        n,
		cols:     make([]column, len(b.schema.Cols)),
		zones:    make([][]Zone, len(b.schema.Cols)),
		summary:  make([]Zone, len(b.schema.Cols)),
		insTS:    append([]uint64(nil), b.insTS...),
		delTS:    make([]atomic.Uint64, n),
		keyIdx:   make(map[uint64][]int32, n),
	}
	for i := range s.delTS {
		s.delTS[i].Store(txn.InfTS)
	}
	for ci, col := range b.schema.Cols {
		s.cols[ci] = encodeColumn(col.Type, b.rows, ci)
		s.zones[ci] = buildZones(b.rows, ci)
		s.summary[ci] = foldZones(s.zones[ci])
	}
	for i, row := range b.rows {
		h := types.HashRow(row, b.schema.Key)
		s.keyIdx[h] = append(s.keyIdx[h], int32(i))
	}
	return s
}

func encodeColumn(t types.Type, rows []types.Row, ci int) column {
	n := len(rows)
	var nulls *types.NullMask
	noteNull := func(i int) {
		if nulls == nil {
			nulls = types.NewNullMask(n)
		}
		nulls.Set(i, true)
	}
	switch t {
	case types.Int64:
		vals := make([]int64, n)
		for i, r := range rows {
			if r[ci].Null {
				noteNull(i)
				continue
			}
			vals[i] = r[ci].I
		}
		if dict := tryIntDict(vals); dict != nil {
			codes, _ := dict.Encode(vals)
			maxCode := uint64(0)
			if dict.Size() > 0 {
				maxCode = uint64(dict.Size() - 1)
			}
			return &intDictColumn{dict: dict, codes: compress.Pack(codes, compress.BitWidthFor(maxCode)), nulls: nulls}
		}
		return &intColumn{enc: compress.FOREncode(vals), nulls: nulls}
	case types.Float64:
		vals := make([]float64, n)
		for i, r := range rows {
			if r[ci].Null {
				noteNull(i)
				continue
			}
			vals[i] = r[ci].F
		}
		return &floatColumn{vals: vals, nulls: nulls}
	case types.String:
		raw := make([]string, n)
		for i, r := range rows {
			if r[ci].Null {
				noteNull(i)
				continue
			}
			raw[i] = r[ci].S
		}
		dict := compress.BuildDictionary(raw)
		codes, _ := dict.Encode(raw)
		maxCode := uint64(0)
		if dict.Size() > 0 {
			maxCode = uint64(dict.Size() - 1)
		}
		return &stringColumn{dict: dict, codes: compress.Pack(codes, compress.BitWidthFor(maxCode)), nulls: nulls}
	case types.Bool:
		vals := make([]uint64, n)
		for i, r := range rows {
			if r[ci].Null {
				noteNull(i)
				continue
			}
			if r[ci].I != 0 {
				vals[i] = 1
			}
		}
		return &boolColumn{bits: compress.Pack(vals, 1), nulls: nulls}
	default:
		panic(fmt.Sprintf("colstore: unsupported type %v", t))
	}
}

// tryIntDict decides whether an int column dictionary-encodes: the
// distinct count must be far below the row count AND the code width
// must beat frame-of-reference's delta width, otherwise FOR is at least
// as compact and needs no indirection. Returns nil to keep FOR.
func tryIntDict(vals []int64) *compress.IntDictionary {
	n := len(vals)
	if n < 2*ZoneSize {
		return nil // small segments: not worth the dictionary overhead
	}
	limit := n / 8
	seen := make(map[int64]struct{}, 256)
	minV, maxV := vals[0], vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
		if len(seen) <= limit {
			seen[v] = struct{}{}
		}
	}
	if len(seen) > limit || len(seen) == 0 {
		return nil
	}
	forWidth := compress.BitWidthFor(uint64(maxV - minV))
	dictWidth := compress.BitWidthFor(uint64(len(seen) - 1))
	if dictWidth >= forWidth {
		return nil
	}
	return compress.BuildIntDictionary(vals)
}

func buildZones(rows []types.Row, ci int) []Zone {
	n := len(rows)
	nz := (n + ZoneSize - 1) / ZoneSize
	zones := make([]Zone, nz)
	for z := 0; z < nz; z++ {
		lo, hi := z*ZoneSize, (z+1)*ZoneSize
		if hi > n {
			hi = n
		}
		zones[z].Rows = hi - lo
		first := true
		for i := lo; i < hi; i++ {
			v := rows[i][ci]
			if v.Null {
				zones[z].NullCount++
				continue
			}
			if first {
				zones[z].Min, zones[z].Max = v, v
				first = false
				continue
			}
			if types.Compare(v, zones[z].Min) < 0 {
				zones[z].Min = v
			}
			if types.Compare(v, zones[z].Max) > 0 {
				zones[z].Max = v
			}
		}
		// An all-null zone keeps zero-valued Min/Max: pruning skips it
		// by NullCount == Rows, never by comparing a sentinel.
	}
	return zones
}

// foldZones aggregates per-zone summaries into one segment-level zone.
func foldZones(zones []Zone) Zone {
	var seg Zone
	first := true
	for _, z := range zones {
		seg.Rows += z.Rows
		seg.NullCount += z.NullCount
		if z.AllNull() {
			continue
		}
		if first {
			seg.Min, seg.Max = z.Min, z.Max
			first = false
			continue
		}
		if types.Compare(z.Min, seg.Min) < 0 {
			seg.Min = z.Min
		}
		if types.Compare(z.Max, seg.Max) > 0 {
			seg.Max = z.Max
		}
	}
	return seg
}

// Schema returns the segment schema.
func (s *Segment) Schema() *types.Schema { return s.schema }

// CreateTS returns the snapshot the segment was merged at.
func (s *Segment) CreateTS() uint64 { return s.createTS }

// NumRows returns the physical row count (including deleted rows).
func (s *Segment) NumRows() int { return s.n }

// NumZones returns the zone count of the segment.
func (s *Segment) NumZones() int { return (s.n + ZoneSize - 1) / ZoneSize }

// ColumnSummary returns the segment-level zone map entry of column ci:
// min/max/null-count folded over every zone. Planners can use it for
// selectivity estimation; the scan uses it to skip whole segments.
func (s *Segment) ColumnSummary(ci int) Zone { return s.summary[ci] }

// DeletedRows returns the committed-deleted row count.
func (s *Segment) DeletedRows() int { return int(s.deleted.Load()) }

// SizeBytes returns the encoded payload size across all columns.
func (s *Segment) SizeBytes() int {
	sz := 0
	for _, c := range s.cols {
		sz += c.sizeBytes()
	}
	return sz
}

// Get materializes column ci of row i.
func (s *Segment) Get(i, ci int) types.Value { return s.cols[ci].get(i) }

// Row materializes row i in full.
func (s *Segment) Row(i int) types.Row {
	r := make(types.Row, len(s.cols))
	for ci := range s.cols {
		r[ci] = s.cols[ci].get(i)
	}
	return r
}

// RowVisible reports whether row i is visible at (readTS, self): the
// merged version was committed at or before the snapshot and has not
// been deleted as of the snapshot. Because each row carries its insert
// timestamp, this is exact even for snapshots older than the merge.
func (s *Segment) RowVisible(i int, readTS, self uint64) bool {
	return txn.Visible(s.insTS[i], s.delTS[i].Load(), readTS, self)
}

// InsertTS returns row i's insert (commit) timestamp.
func (s *Segment) InsertTS(i int) uint64 { return s.insTS[i] }

// FindKey returns the segment row index holding key, or -1. Deleted rows
// are still found (the caller decides based on visibility).
func (s *Segment) FindKey(key types.Row) int {
	h := keyHashOf(key)
	for _, idx := range s.keyIdx[h] {
		if types.CompareKeys(s.keyRow(int(idx)), key) == 0 {
			return int(idx)
		}
	}
	return -1
}

func keyHashOf(key types.Row) uint64 {
	cols := make([]int, len(key))
	for i := range cols {
		cols[i] = i
	}
	return types.HashRow(key, cols)
}

func (s *Segment) keyRow(i int) types.Row {
	k := make(types.Row, len(s.schema.Key))
	for j, ci := range s.schema.Key {
		k[j] = s.cols[ci].get(i)
	}
	return k
}

// MarkDeleted takes the MVCC write lock on row i for transaction t
// (first-updater-wins) and registers commit/abort hooks. It returns
// txn.ErrConflict if another transaction holds the row or it was deleted
// after t's snapshot.
func (s *Segment) MarkDeleted(t *txn.Txn, i int) error {
	cur := s.delTS[i].Load()
	if cur == t.ID {
		return nil // already marked by us
	}
	if txn.IsCommittedTS(cur) {
		return txn.ErrConflict // already deleted (any committed delete conflicts a writer)
	}
	if cur != txn.InfTS {
		return txn.ErrConflict // another txn's uncommitted delete
	}
	if !s.delTS[i].CompareAndSwap(txn.InfTS, t.ID) {
		return txn.ErrConflict
	}
	t.OnCommit(func(ts uint64) {
		s.delTS[i].Store(ts)
		s.deleted.Add(1)
	})
	t.OnAbort(func() { s.delTS[i].Store(txn.InfTS) })
	return nil
}

// DeleteTS returns row i's current delete timestamp.
func (s *Segment) DeleteTS(i int) uint64 { return s.delTS[i].Load() }
