package colstore

import (
	"sync"
	"sync/atomic"

	"repro/internal/txn"
	"repro/internal/types"
)

// Store is the column-store side of one table: an ordered list of
// immutable segments, oldest first. New segments are appended by the
// delta-merge; compaction may rewrite segments with many deleted rows.
type Store struct {
	mu       sync.RWMutex
	schema   *types.Schema
	segments []*Segment
}

// NewStore creates an empty column store for the schema.
func NewStore(schema *types.Schema) *Store {
	return &Store{schema: schema}
}

// Schema returns the table schema.
func (st *Store) Schema() *types.Schema { return st.schema }

// AddSegment appends a freshly merged segment.
func (st *Store) AddSegment(s *Segment) {
	st.mu.Lock()
	st.segments = append(st.segments, s)
	st.mu.Unlock()
}

// Segments returns a snapshot of the segment list.
func (st *Store) Segments() []*Segment {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return append([]*Segment(nil), st.segments...)
}

// NumSegments returns the segment count.
func (st *Store) NumSegments() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.segments)
}

// NumRows returns the total physical rows across segments.
func (st *Store) NumRows() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, s := range st.segments {
		n += s.NumRows()
	}
	return n
}

// SizeBytes returns the total encoded size across segments.
func (st *Store) SizeBytes() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	sz := 0
	for _, s := range st.segments {
		sz += s.SizeBytes()
	}
	return sz
}

// Scan streams matching visible rows from every segment. Stats aggregate
// across segments.
func (st *Store) Scan(readTS, self uint64, proj []int, preds []Predicate, fn func(b *types.Batch) bool) ScanStats {
	return st.scanSegments(nil, fn, func(s *Segment, segFn func(b *types.Batch) bool) ScanStats {
		return s.Scan(readTS, self, proj, preds, segFn)
	})
}

// ScanParallel is Scan with each segment scanned morsel-parallel by up
// to workers goroutines (see Segment.ScanParallel). fn observes one
// batch at a time, but the batch is pooled and only valid until fn
// returns. A non-nil done channel cancels the scan between zones; a
// cancelled scan stops delivering batches and returns once its workers
// have exited.
func (st *Store) ScanParallel(readTS, self uint64, proj []int, preds []Predicate, workers int, done <-chan struct{}, fn func(b *types.Batch) bool) ScanStats {
	return st.scanSegments(done, fn, func(s *Segment, segFn func(b *types.Batch) bool) ScanStats {
		return s.ScanParallel(readTS, self, proj, preds, workers, done, segFn)
	})
}

// ScanParallelWorkers is the per-worker variant of ScanParallel: each
// segment is scanned by up to workers goroutines and fn is invoked
// concurrently with the producing worker's id (no cross-worker funnel;
// see Segment.ScanParallelWorkers for the contract). Segments run in
// order; within a segment batch order is not preserved.
func (st *Store) ScanParallelWorkers(readTS, self uint64, proj []int, preds []Predicate, workers int, done <-chan struct{}, fn func(worker int, b *types.Batch) bool) ScanStats {
	var total ScanStats
	var stop atomic.Bool
	for _, s := range st.Segments() {
		if stop.Load() || IsDone(done) {
			break
		}
		stats := s.ScanParallelWorkers(readTS, self, proj, preds, workers, done, func(w int, b *types.Batch) bool {
			if !fn(w, b) {
				stop.Store(true)
				return false
			}
			return true
		})
		total.Add(stats)
	}
	return total
}

// scanSegments drives scanSeg over every segment in order, merging
// stats and propagating fn's early stop (and done-channel cancellation)
// across segments.
func (st *Store) scanSegments(done <-chan struct{}, fn func(b *types.Batch) bool, scanSeg func(s *Segment, segFn func(b *types.Batch) bool) ScanStats) ScanStats {
	var total ScanStats
	stop := false
	for _, s := range st.Segments() {
		if stop {
			break
		}
		if IsDone(done) {
			break
		}
		stats := scanSeg(s, func(b *types.Batch) bool {
			if !fn(b) {
				stop = true
				return false
			}
			return true
		})
		total.Add(stats)
	}
	return total
}

// FindVisible locates the live, visible copy of key across segments,
// returning the segment, row index, and true if found.
func (st *Store) FindVisible(key types.Row, readTS, self uint64) (*Segment, int, bool) {
	segs := st.Segments()
	// Newest segment first: a re-merged key's freshest copy wins.
	for i := len(segs) - 1; i >= 0; i-- {
		s := segs[i]
		if idx := s.FindKey(key); idx >= 0 && s.RowVisible(idx, readTS, self) {
			return s, idx, true
		}
	}
	return nil, 0, false
}

// FindBlocking reports whether any segment holds a copy of key that
// would block an insert under first-updater-wins: a copy that is live,
// has an uncommitted delete by another transaction, or was deleted after
// readTS. The engine's insert path uses this for uniqueness.
func (st *Store) FindBlocking(key types.Row, readTS, self uint64) bool {
	for _, s := range st.Segments() {
		idx := s.FindKey(key)
		if idx < 0 {
			continue
		}
		dts := s.DeleteTS(idx)
		switch {
		case dts == txn.InfTS:
			return true // live copy
		case !txn.IsCommittedTS(dts):
			if dts != self {
				return true // another txn's pending delete
			}
		case dts > readTS:
			return true // deleted after our snapshot: conflict
		}
	}
	return false
}

// MarkDeleted locates key's live copy and MVCC-marks it deleted for t.
// Returns false if no visible copy exists in any segment.
func (st *Store) MarkDeleted(t *txn.Txn, key types.Row) (bool, error) {
	s, idx, ok := st.FindVisible(key, t.ReadTS, t.ID)
	if !ok {
		return false, nil
	}
	if err := s.MarkDeleted(t, idx); err != nil {
		return true, err
	}
	return true, nil
}

// CompactThreshold is the deleted-row fraction above which Compact
// rewrites a segment.
const CompactThreshold = 0.3

// Compact rewrites segments whose committed-deleted fraction exceeds
// CompactThreshold, dropping rows invisible at the watermark. It returns
// the number of segments rewritten. Callers must ensure (via the merge
// barrier) that no snapshot older than watermark is active.
func (st *Store) Compact(watermark uint64) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	rewritten := 0
	for i, s := range st.segments {
		if s.NumRows() == 0 {
			continue
		}
		frac := float64(s.DeletedRows()) / float64(s.NumRows())
		if frac < CompactThreshold {
			continue
		}
		b := NewBuilder(st.schema, s.CreateTS())
		for r := 0; r < s.NumRows(); r++ {
			dts := s.delTS[r].Load()
			if txn.IsCommittedTS(dts) && dts <= watermark {
				continue // dead to everyone
			}
			b.AddVersioned(s.Row(r), s.insTS[r])
		}
		ns := b.Build()
		// Carry surviving delete marks (deletes after the watermark).
		nr := 0
		for r := 0; r < s.NumRows(); r++ {
			dts := s.delTS[r].Load()
			if txn.IsCommittedTS(dts) && dts <= watermark {
				continue
			}
			if dts != txn.InfTS {
				ns.delTS[nr].Store(dts)
				if txn.IsCommittedTS(dts) {
					ns.deleted.Add(1)
				}
			}
			nr++
		}
		st.segments[i] = ns
		rewritten++
	}
	return rewritten
}
