// Package rowstore implements the write-optimized half of the
// dual-format architecture: a skip-list-indexed, multi-versioned
// in-memory row store in the style the tutorial attributes to MemSQL's
// DRAM row store [26] and to the row format of Oracle Database
// In-Memory. It doubles as the *delta store* of the column store:
// freshly written rows accumulate here until the delta-merge moves them
// into compressed column segments.
//
// Concurrency model (Hekaton-style, matching internal/txn):
//
//   - Every key maps to a chain of Versions, newest first.
//   - A version's begin/end fields hold either a committed timestamp or
//     the id of the uncommitted transaction that wrote it.
//   - Writers take a per-version "write lock" by CASing end from InfTS
//     to their transaction id — first-updater-wins snapshot isolation.
//   - Readers never block: they walk the chain for the version visible
//     at their snapshot.
package rowstore

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/txn"
	"repro/internal/types"
)

// Errors returned by row-store operations.
var (
	ErrDuplicateKey = errors.New("rowstore: duplicate primary key")
	ErrNotFound     = errors.New("rowstore: key not found")
)

// Version is one MVCC version of a row.
type Version struct {
	Data types.Row
	// Next points to the immediately older version.
	Next *Version

	begin atomic.Uint64
	end   atomic.Uint64
}

// Begin returns the version's begin field (commit TS, txn id, or
// AbortedTS).
func (v *Version) Begin() uint64 { return v.begin.Load() }

// End returns the version's end field (commit TS, txn id, or InfTS).
func (v *Version) End() uint64 { return v.end.Load() }

func newVersion(data types.Row, creator uint64, next *Version) *Version {
	v := &Version{Data: data, Next: next}
	v.begin.Store(creator)
	v.end.Store(txn.InfTS)
	return v
}

// Store is a multi-versioned row store for one table.
type Store struct {
	schema *types.Schema
	list   *index.SkipList[Version]
	// live counts versions currently visible to a fresh snapshot
	// (approximate under concurrency; exact when quiesced).
	live atomic.Int64
}

// New creates a row store for the schema. The schema must have a
// primary key.
func New(schema *types.Schema) (*Store, error) {
	if len(schema.Key) == 0 {
		return nil, fmt.Errorf("rowstore: schema requires a primary key")
	}
	return &Store{schema: schema, list: index.NewSkipList[Version]()}, nil
}

// Schema returns the table schema.
func (s *Store) Schema() *types.Schema { return s.schema }

// LiveCount returns the approximate number of live rows.
func (s *Store) LiveCount() int { return int(s.live.Load()) }

// KeyCount returns the number of distinct keys ever inserted (including
// deleted ones whose chains remain).
func (s *Store) KeyCount() int { return s.list.Len() }

// firstNonAborted skips versions created by aborted transactions.
func firstNonAborted(v *Version) *Version {
	for v != nil && v.Begin() == txn.AbortedTS {
		v = v.Next
	}
	return v
}

// visibleIn walks the chain for the version visible at (readTS, self).
func visibleIn(head *Version, readTS, self uint64) *Version {
	for v := head; v != nil; v = v.Next {
		b := v.Begin()
		if b == txn.AbortedTS {
			continue
		}
		if txn.Visible(b, v.End(), readTS, self) {
			return v
		}
		// Chains are newest-first; once we pass a committed version
		// older than the snapshot, nothing older can match better —
		// but deleted-old versions still need the end check, so we
		// simply continue until nil (chains are short).
	}
	return nil
}

// Insert adds a row under transaction t. It validates the row, enforces
// primary-key uniqueness, and registers commit/abort hooks.
func (s *Store) Insert(t *txn.Txn, row types.Row) error {
	if err := s.schema.Validate(row); err != nil {
		return err
	}
	key := s.schema.KeyOf(row)
	for {
		v := newVersion(row.Clone(), t.ID, nil)
		entry, loaded := s.list.GetOrInsert(key, v)
		if !loaded {
			s.hookInsert(t, v)
			return nil
		}
		head := entry.Load()
		writable := firstNonAborted(head)
		if writable == nil {
			// Chain is all aborted versions: prepend over it.
			v.Next = head
			if entry.CompareAndSwap(head, v) {
				s.hookInsert(t, v)
				return nil
			}
			continue // raced; retry
		}
		e := writable.End()
		switch {
		case e == txn.InfTS:
			// A live version exists.
			if txn.VisibleBegin(writable.Begin(), t.ReadTS, t.ID) {
				return ErrDuplicateKey
			}
			// Live but invisible: either uncommitted insert by another
			// txn or committed after our snapshot — conflict either way.
			return txn.ErrConflict
		case !txn.IsCommittedTS(e):
			// Another transaction holds the write lock (pending delete).
			return txn.ErrConflict
		case e > t.ReadTS:
			// Deleted after our snapshot: first-updater-wins says abort.
			return txn.ErrConflict
		}
		// Deleted before our snapshot: re-insert on top.
		v.Next = head
		if entry.CompareAndSwap(head, v) {
			s.hookInsert(t, v)
			return nil
		}
		// Lost a race with a concurrent writer; retry from scratch.
	}
}

func (s *Store) hookInsert(t *txn.Txn, v *Version) {
	t.OnCommit(func(ts uint64) {
		v.begin.Store(ts)
		s.live.Add(1)
	})
	t.OnAbort(func() { v.begin.Store(txn.AbortedTS) })
}

// lockForWrite finds the writable version for key and CASes its end to
// the transaction id, enforcing first-updater-wins. Returns the entry
// and the locked version.
func (s *Store) lockForWrite(t *txn.Txn, key types.Row) (*index.Entry[Version], *Version, error) {
	entry := s.list.GetEntry(key)
	if entry == nil {
		return nil, nil, ErrNotFound
	}
	head := entry.Load()
	writable := firstNonAborted(head)
	if writable == nil {
		return nil, nil, ErrNotFound
	}
	b := writable.Begin()
	if !txn.IsCommittedTS(b) && b != t.ID {
		return nil, nil, txn.ErrConflict // uncommitted writer at head
	}
	if txn.IsCommittedTS(b) && b > t.ReadTS {
		return nil, nil, txn.ErrConflict // committed after our snapshot
	}
	e := writable.End()
	if txn.IsCommittedTS(e) {
		if e <= t.ReadTS {
			return nil, nil, ErrNotFound // deleted before our snapshot
		}
		return nil, nil, txn.ErrConflict // deleted after our snapshot
	}
	if e != txn.InfTS {
		if e == t.ID {
			return nil, nil, ErrNotFound // we already deleted it ourselves
		}
		return nil, nil, txn.ErrConflict // locked by another txn
	}
	if !writable.end.CompareAndSwap(txn.InfTS, t.ID) {
		return nil, nil, txn.ErrConflict
	}
	return entry, writable, nil
}

// Update replaces the row at key with newRow under transaction t.
// newRow's key projection must equal key (key updates are a delete +
// insert at the engine layer).
func (s *Store) Update(t *txn.Txn, key types.Row, newRow types.Row) error {
	if err := s.schema.Validate(newRow); err != nil {
		return err
	}
	if types.CompareKeys(s.schema.KeyOf(newRow), key) != 0 {
		return fmt.Errorf("rowstore: update must preserve the primary key")
	}
	entry, old, err := s.lockForWrite(t, key)
	if err != nil {
		return err
	}
	head := entry.Load()
	v := newVersion(newRow.Clone(), t.ID, head)
	if !entry.CompareAndSwap(head, v) {
		// Cannot happen while we hold old's write lock (no other writer
		// can prepend), but be safe: release the lock and report.
		old.end.Store(txn.InfTS)
		return txn.ErrConflict
	}
	t.OnCommit(func(ts uint64) {
		v.begin.Store(ts)
		old.end.Store(ts)
	})
	t.OnAbort(func() {
		v.begin.Store(txn.AbortedTS)
		old.end.Store(txn.InfTS)
	})
	return nil
}

// Delete removes the row at key under transaction t.
func (s *Store) Delete(t *txn.Txn, key types.Row) error {
	_, old, err := s.lockForWrite(t, key)
	if err != nil {
		return err
	}
	t.OnCommit(func(ts uint64) {
		old.end.Store(ts)
		s.live.Add(-1)
	})
	t.OnAbort(func() { old.end.Store(txn.InfTS) })
	return nil
}

// Get returns the row visible to transaction t at key.
func (s *Store) Get(t *txn.Txn, key types.Row) (types.Row, bool) {
	return s.GetAt(key, t.ReadTS, t.ID)
}

// GetAt returns the row visible at an explicit snapshot.
func (s *Store) GetAt(key types.Row, readTS, self uint64) (types.Row, bool) {
	entry := s.list.GetEntry(key)
	if entry == nil {
		return nil, false
	}
	if v := visibleIn(entry.Load(), readTS, self); v != nil {
		return v.Data, true
	}
	return nil, false
}

// Scan calls fn with every row visible at (readTS, self) in primary-key
// order, stopping early if fn returns false.
func (s *Store) Scan(readTS, self uint64, fn func(row types.Row) bool) {
	s.list.Seek(nil, func(key types.Row, e *index.Entry[Version]) bool {
		if v := visibleIn(e.Load(), readTS, self); v != nil {
			return fn(v.Data)
		}
		return true
	})
}

// ScanRange is Scan restricted to from <= key < to (nil bounds open).
func (s *Store) ScanRange(from, to types.Row, readTS, self uint64, fn func(row types.Row) bool) {
	s.list.Range(from, to, func(key types.Row, e *index.Entry[Version]) bool {
		if v := visibleIn(e.Load(), readTS, self); v != nil {
			return fn(v.Data)
		}
		return true
	})
}

// CollectAt returns every row visible at snapshot ts, in key order. The
// delta-merge uses this to build column segments.
func (s *Store) CollectAt(ts uint64) []types.Row {
	var out []types.Row
	s.Scan(ts, 0, func(row types.Row) bool {
		out = append(out, row)
		return true
	})
	return out
}

// CollectVersionsAt returns the rows visible at snapshot ts along with
// each version's commit (begin) timestamp, in key order. The delta-merge
// uses the timestamps as per-row insert timestamps in the column
// segment, which lets readers at any snapshot — including ones older
// than the merge — evaluate segment-row visibility exactly.
func (s *Store) CollectVersionsAt(ts uint64) ([]types.Row, []uint64) {
	var rows []types.Row
	var begins []uint64
	s.list.Seek(nil, func(key types.Row, e *index.Entry[Version]) bool {
		if v := visibleIn(e.Load(), ts, 0); v != nil {
			rows = append(rows, v.Data)
			begins = append(begins, v.Begin())
		}
		return true
	})
	return rows, begins
}

// TruncateMerged removes versions whose data was absorbed by a merge at
// mergeTS (live committed versions with begin <= mergeTS — readers find
// them in the segment via per-row insert timestamps), plus garbage:
// aborted versions and versions dead at or before watermark (invisible
// to every active and future snapshot).
//
// The caller must guarantee write quiescence on the table: no version of
// this store carries an uncommitted begin or end while TruncateMerged
// runs (the engine's merge gate provides this).
func (s *Store) TruncateMerged(mergeTS, watermark uint64) {
	s.list.Seek(nil, func(key types.Row, e *index.Entry[Version]) bool {
		for {
			head := e.Load()
			newHead := pruneMerged(head, mergeTS, watermark)
			if newHead == head {
				return true
			}
			if e.CompareAndSwap(head, newHead) {
				return true
			}
		}
	})
	s.recount()
}

// pruneMerged rebuilds the chain without versions fully absorbed by a
// merge at mergeTS or dead below watermark.
func pruneMerged(head *Version, mergeTS, watermark uint64) *Version {
	var keep []*Version
	changed := false
	for v := head; v != nil; v = v.Next {
		b, e := v.Begin(), v.End()
		switch {
		case b == txn.AbortedTS:
			changed = true // drop aborted versions opportunistically
		case txn.IsCommittedTS(b) && b <= mergeTS && e == txn.InfTS:
			changed = true // live row absorbed into the segment
		case txn.IsCommittedTS(b) && txn.IsCommittedTS(e) && e <= watermark:
			changed = true // dead below the watermark: invisible to all
		default:
			keep = append(keep, v)
		}
	}
	if !changed {
		return head
	}
	var newHead *Version
	for i := len(keep) - 1; i >= 0; i-- {
		nv := keep[i]
		// Rebuild Next links over the kept set. Mutating Next is safe
		// under the merge gate's write quiescence; concurrent readers
		// racing the CAS re-walk from the (immutable) head they loaded.
		nv.Next = newHead
		newHead = nv
	}
	return newHead
}

// recount recomputes the live counter (post-merge housekeeping).
func (s *Store) recount() {
	var n int64
	now := txn.InfTS - 2 // effectively "latest"
	s.list.Seek(nil, func(key types.Row, e *index.Entry[Version]) bool {
		if v := visibleIn(e.Load(), now, 0); v != nil {
			n++
		}
		return true
	})
	s.live.Store(n)
}
