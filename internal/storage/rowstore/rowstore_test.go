package rowstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/txn"
	"repro/internal/types"
)

func testSchema() *types.Schema {
	return types.MustSchema([]types.Column{
		{Name: "id", Type: types.Int64},
		{Name: "name", Type: types.String},
		{Name: "qty", Type: types.Int64},
	}, "id")
}

func row(id int64, name string, qty int64) types.Row {
	return types.Row{types.NewInt(id), types.NewString(name), types.NewInt(qty)}
}

func key(id int64) types.Row { return types.Row{types.NewInt(id)} }

func mustCommit(t *testing.T, tx *txn.Txn) uint64 {
	t.Helper()
	ts, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestNewRequiresKey(t *testing.T) {
	s := types.MustSchema([]types.Column{{Name: "a", Type: types.Int64}})
	if _, err := New(s); err == nil {
		t.Fatal("schema without key should be rejected")
	}
}

func TestInsertGetCommit(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t1 := o.Begin()
	if err := s.Insert(t1, row(1, "a", 10)); err != nil {
		t.Fatal(err)
	}
	// Own write visible before commit.
	if got, ok := s.Get(t1, key(1)); !ok || got[1].S != "a" {
		t.Fatal("own uncommitted write must be visible")
	}
	// Other txn does not see it.
	t2 := o.Begin()
	if _, ok := s.Get(t2, key(1)); ok {
		t.Fatal("uncommitted write leaked")
	}
	mustCommit(t, t1)
	// t2's snapshot predates the commit: still invisible.
	if _, ok := s.Get(t2, key(1)); ok {
		t.Fatal("snapshot isolation violated: commit appeared mid-txn")
	}
	t2.Abort()
	// Fresh txn sees it.
	t3 := o.Begin()
	if got, ok := s.Get(t3, key(1)); !ok || got[2].I != 10 {
		t.Fatal("committed row invisible to new snapshot")
	}
	t3.Abort()
	if s.LiveCount() != 1 {
		t.Fatalf("LiveCount = %d", s.LiveCount())
	}
}

func TestInsertDuplicate(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t1 := o.Begin()
	s.Insert(t1, row(1, "a", 1))
	mustCommit(t, t1)
	t2 := o.Begin()
	if err := s.Insert(t2, row(1, "b", 2)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want duplicate key", err)
	}
	t2.Abort()
	// Duplicate within the same transaction.
	t3 := o.Begin()
	s.Insert(t3, row(2, "x", 1))
	if err := s.Insert(t3, row(2, "y", 1)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("same-txn duplicate: %v", err)
	}
	t3.Abort()
}

func TestInsertConflictWithUncommitted(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t1 := o.Begin()
	s.Insert(t1, row(1, "a", 1))
	t2 := o.Begin()
	if err := s.Insert(t2, row(1, "b", 1)); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("insert over uncommitted insert: %v", err)
	}
	t1.Abort()
	t2.Abort()
	// After the abort a new transaction can insert the key.
	t3 := o.Begin()
	if err := s.Insert(t3, row(1, "c", 1)); err != nil {
		t.Fatalf("insert over aborted insert: %v", err)
	}
	mustCommit(t, t3)
	t4 := o.Begin()
	if got, ok := s.Get(t4, key(1)); !ok || got[1].S != "c" {
		t.Fatal("re-insert after abort not visible")
	}
	t4.Abort()
}

func TestUpdateVisibilityAndRollback(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t1 := o.Begin()
	s.Insert(t1, row(1, "a", 10))
	mustCommit(t, t1)

	t2 := o.Begin()
	if err := s.Update(t2, key(1), row(1, "a", 20)); err != nil {
		t.Fatal(err)
	}
	// t2 sees its own update; a concurrent reader sees the old value.
	if got, _ := s.Get(t2, key(1)); got[2].I != 20 {
		t.Fatal("own update invisible")
	}
	tr := o.Begin()
	if got, _ := s.Get(tr, key(1)); got[2].I != 10 {
		t.Fatal("reader saw uncommitted update")
	}
	t2.Abort()
	tr.Abort()
	// After abort the old value is back for everyone.
	t3 := o.Begin()
	if got, _ := s.Get(t3, key(1)); got[2].I != 10 {
		t.Fatal("abort did not restore old version")
	}
	// And the key is updatable again.
	if err := s.Update(t3, key(1), row(1, "a", 30)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t3)
	t4 := o.Begin()
	if got, _ := s.Get(t4, key(1)); got[2].I != 30 {
		t.Fatal("committed update invisible")
	}
	t4.Abort()
}

func TestUpdateKeyMismatch(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t1 := o.Begin()
	s.Insert(t1, row(1, "a", 1))
	mustCommit(t, t1)
	t2 := o.Begin()
	if err := s.Update(t2, key(1), row(2, "a", 1)); err == nil {
		t.Fatal("key-changing update must be rejected")
	}
	t2.Abort()
}

func TestWriteWriteConflict(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t0 := o.Begin()
	s.Insert(t0, row(1, "a", 1))
	mustCommit(t, t0)

	t1, t2 := o.Begin(), o.Begin()
	if err := s.Update(t1, key(1), row(1, "a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(t2, key(1), row(1, "a", 3)); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("second writer should conflict: %v", err)
	}
	mustCommit(t, t1)
	t2.Abort()
	// First-updater-wins even after commit: a txn with an old snapshot
	// must not overwrite a newer committed version.
	t3 := o.Begin()
	for i := 0; i < 1; i++ { // t3's snapshot is current; this should work
		if err := s.Update(t3, key(1), row(1, "a", 4)); err != nil {
			t.Fatal(err)
		}
	}
	t3.Abort()
}

func TestStaleSnapshotWriteConflicts(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t0 := o.Begin()
	s.Insert(t0, row(1, "a", 1))
	mustCommit(t, t0)

	stale := o.Begin() // snapshot before the next update
	t1 := o.Begin()
	s.Update(t1, key(1), row(1, "a", 2))
	mustCommit(t, t1)
	if err := s.Update(stale, key(1), row(1, "a", 99)); !errors.Is(err, txn.ErrConflict) {
		t.Fatalf("stale writer should conflict: %v", err)
	}
	stale.Abort()
}

func TestDeleteAndReinsert(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t0 := o.Begin()
	s.Insert(t0, row(1, "a", 1))
	mustCommit(t, t0)

	t1 := o.Begin()
	if err := s.Delete(t1, key(1)); err != nil {
		t.Fatal(err)
	}
	// Deleted for self, still visible to others.
	if _, ok := s.Get(t1, key(1)); ok {
		t.Fatal("own delete should hide the row")
	}
	tr := o.Begin()
	if _, ok := s.Get(tr, key(1)); !ok {
		t.Fatal("uncommitted delete leaked")
	}
	tr.Abort()
	mustCommit(t, t1)

	// Re-insert the key.
	t2 := o.Begin()
	if _, ok := s.Get(t2, key(1)); ok {
		t.Fatal("deleted row visible")
	}
	if err := s.Insert(t2, row(1, "b", 2)); err != nil {
		t.Fatalf("re-insert after delete: %v", err)
	}
	mustCommit(t, t2)
	t3 := o.Begin()
	if got, ok := s.Get(t3, key(1)); !ok || got[1].S != "b" {
		t.Fatal("re-inserted row wrong")
	}
	t3.Abort()
	// Double delete within one txn.
	t4 := o.Begin()
	if err := s.Delete(t4, key(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(t4, key(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second delete in txn: %v", err)
	}
	t4.Abort()
}

func TestDeleteMissing(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t1 := o.Begin()
	if err := s.Delete(t1, key(42)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	t1.Abort()
}

func TestScanVisibilityAndOrder(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t0 := o.Begin()
	for _, id := range []int64{5, 1, 3, 2, 4} {
		s.Insert(t0, row(id, fmt.Sprint(id), id*10))
	}
	mustCommit(t, t0)
	t1 := o.Begin()
	s.Delete(t1, key(3))
	s.Insert(t1, row(6, "six", 60))
	mustCommit(t, t1)

	t2 := o.Begin()
	var ids []int64
	s.Scan(t2.ReadTS, t2.ID, func(r types.Row) bool {
		ids = append(ids, r[0].I)
		return true
	})
	want := []int64{1, 2, 4, 5, 6}
	if len(ids) != len(want) {
		t.Fatalf("scan = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("scan = %v, want %v", ids, want)
		}
	}
	// Range scan.
	ids = ids[:0]
	s.ScanRange(key(2), key(5), t2.ReadTS, t2.ID, func(r types.Row) bool {
		ids = append(ids, r[0].I)
		return true
	})
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 4 {
		t.Fatalf("range scan = %v", ids)
	}
	t2.Abort()
}

func TestTimeTravelSnapshots(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t0 := o.Begin()
	s.Insert(t0, row(1, "v1", 1))
	ts1 := mustCommit(t, t0)
	t1 := o.Begin()
	s.Update(t1, key(1), row(1, "v2", 2))
	ts2 := mustCommit(t, t1)

	if got, ok := s.GetAt(key(1), ts1, 0); !ok || got[1].S != "v1" {
		t.Fatal("snapshot at ts1 should see v1")
	}
	if got, ok := s.GetAt(key(1), ts2, 0); !ok || got[1].S != "v2" {
		t.Fatal("snapshot at ts2 should see v2")
	}
	if _, ok := s.GetAt(key(1), ts1-1, 0); ok {
		t.Fatal("snapshot before insert should see nothing")
	}
}

func TestCollectAtAndTruncateMerged(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t0 := o.Begin()
	for id := int64(1); id <= 4; id++ {
		s.Insert(t0, row(id, "x", id))
	}
	mergeTS := mustCommit(t, t0)
	// Post-merge writes.
	t1 := o.Begin()
	s.Update(t1, key(2), row(2, "y", 22))
	s.Insert(t1, row(5, "z", 5))
	afterTS := mustCommit(t, t1)

	rows := s.CollectAt(mergeTS)
	if len(rows) != 4 {
		t.Fatalf("CollectAt(mergeTS) = %d rows", len(rows))
	}
	vrows, begins := s.CollectVersionsAt(mergeTS)
	if len(vrows) != 4 || len(begins) != 4 {
		t.Fatalf("CollectVersionsAt = %d rows, %d begins", len(vrows), len(begins))
	}
	for _, b := range begins {
		if b != mergeTS {
			t.Fatalf("begin = %d, want %d", b, mergeTS)
		}
	}
	s.TruncateMerged(mergeTS, o.Watermark())
	// Rows committed before mergeTS are gone from the row store...
	t2 := o.Begin()
	if _, ok := s.Get(t2, key(1)); ok {
		t.Fatal("merged row should be truncated from the delta")
	}
	// ...but post-merge versions survive.
	if got, ok := s.Get(t2, key(2)); !ok || got[2].I != 22 {
		t.Fatal("post-merge update lost")
	}
	if _, ok := s.Get(t2, key(5)); !ok {
		t.Fatal("post-merge insert lost")
	}
	t2.Abort()
	_ = afterTS
	if s.LiveCount() != 2 {
		t.Fatalf("LiveCount after truncate = %d, want 2", s.LiveCount())
	}
}

func TestConcurrentInsertersDistinctKeys(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	var wg sync.WaitGroup
	const G, N = 8, 500
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < N; i++ {
				tx := o.Begin()
				if err := s.Insert(tx, row(int64(g*N+i), "w", 1)); err != nil {
					t.Errorf("insert: %v", err)
					tx.Abort()
					continue
				}
				tx.Commit()
			}
		}(g)
	}
	wg.Wait()
	if s.LiveCount() != G*N {
		t.Fatalf("LiveCount = %d, want %d", s.LiveCount(), G*N)
	}
}

func TestConcurrentWritersSameKeyExactlyOneWins(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	t0 := o.Begin()
	s.Insert(t0, row(1, "a", 0))
	mustCommit(t, t0)
	const G = 16
	// All transactions take their snapshot before any of them writes, so
	// they are genuinely concurrent and exactly one may commit.
	txs := make([]*txn.Txn, G)
	for g := range txs {
		txs[g] = o.Begin()
	}
	var wins int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			tx := txs[g]
			if err := s.Update(tx, key(1), row(1, "a", int64(g))); err != nil {
				tx.Abort()
				return
			}
			if _, err := tx.Commit(); err == nil {
				mu.Lock()
				wins++
				mu.Unlock()
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if wins != 1 {
		t.Fatalf("exactly one concurrent writer must win, got %d", wins)
	}
}

func TestConcurrentReadersSeeConsistentSnapshot(t *testing.T) {
	o := txn.NewOracle()
	s, _ := New(testSchema())
	// Two rows whose qty always sums to 100 in every committed state.
	t0 := o.Begin()
	s.Insert(t0, row(1, "a", 50))
	s.Insert(t0, row(2, "b", 50))
	mustCommit(t, t0)
	stop := make(chan struct{})
	var writerWG, wg sync.WaitGroup
	writerWG.Add(1)
	go func() { // writer: moves qty between the rows transactionally
		defer writerWG.Done()
		rng := rand.New(rand.NewSource(42))
		for {
			select {
			case <-stop:
				return
			default:
			}
			tx := o.Begin()
			d := int64(rng.Intn(10))
			r1, ok1 := s.Get(tx, key(1))
			r2, ok2 := s.Get(tx, key(2))
			if !ok1 || !ok2 {
				tx.Abort()
				continue
			}
			e1 := s.Update(tx, key(1), row(1, "a", r1[2].I-d))
			e2 := s.Update(tx, key(2), row(2, "b", r2[2].I+d))
			if e1 != nil || e2 != nil {
				tx.Abort()
				continue
			}
			tx.Commit()
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tx := o.Begin()
				r1, ok1 := s.Get(tx, key(1))
				r2, ok2 := s.Get(tx, key(2))
				tx.Abort()
				if !ok1 || !ok2 {
					t.Error("reader lost a row")
					return
				}
				if r1[2].I+r2[2].I != 100 {
					t.Errorf("invariant broken: %d + %d", r1[2].I, r2[2].I)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
}
