// Package delta implements a copy-on-write page store: the in-process
// substitute for HyPer's virtual-memory snapshots [19].
//
// HyPer forks the OLTP process; the child inherits the address space and
// the OS copies pages lazily as the parent writes. Go cannot fork
// in-process, so we reproduce the mechanism at the library level: rows
// live in fixed-size pages; Snapshot() captures the page table in O(1)
// (bumping an epoch); a writer touching a page older than the latest
// snapshot epoch first copies it. Snapshot cost is therefore
// proportional to the pages subsequently dirtied, not to database size —
// the exact property HyPer demonstrates and experiment E12 measures.
package delta

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// PageSize is the number of row slots per page.
const PageSize = 256

type page struct {
	// epoch is the snapshot epoch the page was created or copied in; a
	// writer in a later epoch must copy first (some snapshot may still
	// reference this page).
	epoch uint64
	rows  []types.Row
}

// PageStore is a row-id addressed, copy-on-write paged row container.
type PageStore struct {
	mu    sync.RWMutex
	pages []*page
	n     int // total row slots in use
	epoch atomic.Uint64
	// copies counts COW page copies (E12's cost metric).
	copies atomic.Uint64
	// snapshots counts live+taken snapshots.
	snapshots atomic.Uint64
}

// NewPageStore returns an empty store.
func NewPageStore() *PageStore {
	return &PageStore{}
}

// Len returns the number of row slots (including deleted = nil slots).
func (ps *PageStore) Len() int {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return ps.n
}

// NumPages returns the page count.
func (ps *PageStore) NumPages() int {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return len(ps.pages)
}

// Copies returns the number of COW page copies performed.
func (ps *PageStore) Copies() uint64 { return ps.copies.Load() }

// writablePage returns page pi, copying it first if it may be referenced
// by a snapshot. Caller holds ps.mu (write).
func (ps *PageStore) writablePage(pi int) *page {
	p := ps.pages[pi]
	cur := ps.epoch.Load()
	if p.epoch == cur {
		return p
	}
	// Page predates the newest snapshot: copy-on-write.
	np := &page{epoch: cur, rows: make([]types.Row, len(p.rows), PageSize)}
	copy(np.rows, p.rows)
	ps.pages[pi] = np
	ps.copies.Add(1)
	return np
}

// Append adds a row and returns its row id.
func (ps *PageStore) Append(row types.Row) int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	pi := ps.n / PageSize
	if pi == len(ps.pages) {
		ps.pages = append(ps.pages, &page{epoch: ps.epoch.Load(), rows: make([]types.Row, 0, PageSize)})
	}
	p := ps.writablePage(pi)
	p.rows = append(p.rows, row.Clone())
	id := ps.n
	ps.n++
	return id
}

// Get returns the row at id (nil if deleted), and whether id is valid.
func (ps *PageStore) Get(id int) (types.Row, bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	if id < 0 || id >= ps.n {
		return nil, false
	}
	return ps.pages[id/PageSize].rows[id%PageSize], true
}

// Update replaces the row at id, copy-on-writing its page if needed.
func (ps *PageStore) Update(id int, row types.Row) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if id < 0 || id >= ps.n {
		return fmt.Errorf("delta: row id %d out of range", id)
	}
	p := ps.writablePage(id / PageSize)
	p.rows[id%PageSize] = row.Clone()
	return nil
}

// Delete clears the slot at id (tombstone), copy-on-writing its page.
func (ps *PageStore) Delete(id int) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if id < 0 || id >= ps.n {
		return fmt.Errorf("delta: row id %d out of range", id)
	}
	p := ps.writablePage(id / PageSize)
	p.rows[id%PageSize] = nil
	return nil
}

// Scan calls fn for each live row in id order; fn returning false stops.
// Scan holds a read lock for its duration, blocking writers; analytic
// readers that must not block writers should Scan a Snapshot instead
// (that contrast is the HyPer argument E12 quantifies).
func (ps *PageStore) Scan(fn func(id int, row types.Row) bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	scanPages(ps.pages, ps.n, fn)
}

func scanPages(pages []*page, n int, fn func(id int, row types.Row) bool) {
	id := 0
	for _, p := range pages {
		for _, r := range p.rows {
			if id >= n {
				return
			}
			if r != nil {
				if !fn(id, r) {
					return
				}
			}
			id++
		}
	}
}

// Snapshot captures a transaction-consistent, immutable view in O(1):
// it copies only the page table (pointer array), bumps the epoch, and
// lets subsequent writers copy pages lazily.
type Snapshot struct {
	pages []*page
	n     int
	epoch uint64
}

// Snapshot takes a snapshot of the current state.
func (ps *PageStore) Snapshot() *Snapshot {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	s := &Snapshot{
		pages: append([]*page(nil), ps.pages...),
		n:     ps.n,
		epoch: ps.epoch.Add(1),
	}
	ps.snapshots.Add(1)
	return s
}

// Len returns the snapshot's row-slot count.
func (s *Snapshot) Len() int { return s.n }

// Epoch returns the snapshot's epoch.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Get returns the row at id as of the snapshot.
func (s *Snapshot) Get(id int) (types.Row, bool) {
	if id < 0 || id >= s.n {
		return nil, false
	}
	return s.pages[id/PageSize].rows[id%PageSize], true
}

// Scan iterates the snapshot's live rows in id order.
func (s *Snapshot) Scan(fn func(id int, row types.Row) bool) {
	scanPages(s.pages, s.n, fn)
}
