package delta

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func r(i int64) types.Row { return types.Row{types.NewInt(i)} }

func TestAppendGet(t *testing.T) {
	ps := NewPageStore()
	for i := 0; i < 1000; i++ {
		if id := ps.Append(r(int64(i))); id != i {
			t.Fatalf("Append returned id %d, want %d", id, i)
		}
	}
	if ps.Len() != 1000 {
		t.Fatalf("Len = %d", ps.Len())
	}
	if ps.NumPages() != (1000+PageSize-1)/PageSize {
		t.Fatalf("NumPages = %d", ps.NumPages())
	}
	for i := 0; i < 1000; i++ {
		row, ok := ps.Get(i)
		if !ok || row[0].I != int64(i) {
			t.Fatalf("Get(%d) = %v, %v", i, row, ok)
		}
	}
	if _, ok := ps.Get(-1); ok {
		t.Fatal("negative id")
	}
	if _, ok := ps.Get(1000); ok {
		t.Fatal("out-of-range id")
	}
}

func TestUpdateDelete(t *testing.T) {
	ps := NewPageStore()
	ps.Append(r(1))
	ps.Append(r(2))
	if err := ps.Update(0, r(10)); err != nil {
		t.Fatal(err)
	}
	if row, _ := ps.Get(0); row[0].I != 10 {
		t.Fatal("update not applied")
	}
	if err := ps.Delete(1); err != nil {
		t.Fatal(err)
	}
	if row, ok := ps.Get(1); !ok || row != nil {
		t.Fatal("delete should leave a nil slot")
	}
	if err := ps.Update(99, r(0)); err == nil {
		t.Fatal("out-of-range update")
	}
	if err := ps.Delete(99); err == nil {
		t.Fatal("out-of-range delete")
	}
	var ids []int
	ps.Scan(func(id int, row types.Row) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("scan ids = %v", ids)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	ps := NewPageStore()
	for i := 0; i < 600; i++ {
		ps.Append(r(int64(i)))
	}
	snap := ps.Snapshot()
	// Mutate the master heavily.
	for i := 0; i < 600; i++ {
		ps.Update(i, r(int64(i+1000)))
	}
	for i := 0; i < 100; i++ {
		ps.Append(r(int64(9000 + i)))
	}
	// Snapshot still sees the old world.
	if snap.Len() != 600 {
		t.Fatalf("snapshot Len = %d", snap.Len())
	}
	for i := 0; i < 600; i++ {
		row, ok := snap.Get(i)
		if !ok || row[0].I != int64(i) {
			t.Fatalf("snapshot Get(%d) = %v", i, row)
		}
	}
	if _, ok := snap.Get(600); ok {
		t.Fatal("snapshot sees post-snapshot append")
	}
	// Master sees the new world.
	if row, _ := ps.Get(0); row[0].I != 1000 {
		t.Fatal("master lost its update")
	}
	count := 0
	snap.Scan(func(id int, row types.Row) bool {
		if row[0].I != int64(id) {
			t.Fatalf("snapshot scan saw %d at %d", row[0].I, id)
		}
		count++
		return true
	})
	if count != 600 {
		t.Fatalf("snapshot scan count = %d", count)
	}
}

func TestCOWCopiesProportionalToDirtyPages(t *testing.T) {
	ps := NewPageStore()
	const n = 40 * PageSize
	for i := 0; i < n; i++ {
		ps.Append(r(int64(i)))
	}
	base := ps.Copies()
	_ = ps.Snapshot()
	// Touch rows in only 3 pages.
	ps.Update(0, r(-1))
	ps.Update(1, r(-2))             // same page: no extra copy
	ps.Update(10*PageSize, r(-3))   // second page
	ps.Update(20*PageSize+5, r(-4)) // third page
	ps.Update(20*PageSize+6, r(-5)) // same page again
	if got := ps.Copies() - base; got != 3 {
		t.Fatalf("COW copies = %d, want 3 (one per dirtied page)", got)
	}
}

func TestSnapshotEpochAdvances(t *testing.T) {
	ps := NewPageStore()
	ps.Append(r(1))
	s1 := ps.Snapshot()
	s2 := ps.Snapshot()
	if s2.Epoch() <= s1.Epoch() {
		t.Fatal("epochs must advance")
	}
}

func TestMultipleSnapshotsSeeTheirOwnStates(t *testing.T) {
	ps := NewPageStore()
	ps.Append(r(1))
	s1 := ps.Snapshot()
	ps.Update(0, r(2))
	s2 := ps.Snapshot()
	ps.Update(0, r(3))
	v1, _ := s1.Get(0)
	v2, _ := s2.Get(0)
	v3, _ := ps.Get(0)
	if v1[0].I != 1 || v2[0].I != 2 || v3[0].I != 3 {
		t.Fatalf("snapshot lineage broken: %d %d %d", v1[0].I, v2[0].I, v3[0].I)
	}
}

func TestConcurrentSnapshotReadersAndWriter(t *testing.T) {
	ps := NewPageStore()
	const n = 8 * PageSize
	for i := 0; i < n; i++ {
		ps.Append(r(int64(i)))
	}
	var wg, writerWG sync.WaitGroup
	stop := make(chan struct{})
	writerWG.Add(1)
	go func() { // writer
		defer writerWG.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			ps.Update(i%n, r(int64(-i)))
			ps.Append(r(int64(i)))
			i++
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				snap := ps.Snapshot()
				// A snapshot scan must see an immutable, consistent state.
				want := snap.Len()
				seen := 0
				snap.Scan(func(id int, row types.Row) bool {
					seen++
					return true
				})
				if seen != want {
					t.Errorf("snapshot scan saw %d rows, want %d", seen, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
}

func TestSnapshotGetBounds(t *testing.T) {
	ps := NewPageStore()
	ps.Append(r(1))
	s := ps.Snapshot()
	if _, ok := s.Get(-1); ok {
		t.Fatal("negative")
	}
	if _, ok := s.Get(1); ok {
		t.Fatal("past end")
	}
}
