// CH-benCHmark join-ordering suite: greedy-vs-syntactic parity over
// every multi-join CH query, plus golden plan-shape pins asserting the
// join order the statistics-driven planner picks on the loaded dataset.
package repro

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sql"
	"repro/internal/types"
)

// newCHEngine loads the CH dataset at default scale and merges every
// table so segment statistics (zone maps, dictionaries) exist.
func newCHEngine(t *testing.T, disableReorder bool) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.Options{DisableJoinReorder: disableReorder})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := bench.CreateTables(e); err != nil {
		t.Fatal(err)
	}
	if err := bench.Load(e, bench.DefaultScale(), 1); err != nil {
		t.Fatal(err)
	}
	for name := range bench.Schemas() {
		if _, err := e.Merge(name); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// chJoinQueryIDs are the CH queries with at least one join.
var chJoinQueryIDs = map[int]bool{3: true, 5: true, 8: true, 12: true, 13: true, 14: true, 15: true, 16: true, 17: true}

// renderRows renders rows for order-insensitive comparison. Float
// values are rounded to 9 significant digits: SUM over floats is not
// associative, so two join orders legitimately differ in the last bits.
func renderRows(rows []types.Row) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		parts := make([]string, len(r))
		for i, v := range r {
			if !v.Null && v.Typ == types.Float64 {
				parts[i] = fmt.Sprintf("%.9g", v.F)
			} else {
				parts[i] = v.String()
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return out
}

// TestCHMultiJoinParity requires every CH join query to return the
// same multiset of rows whether the greedy orderer or syntactic order
// plans it.
func TestCHMultiJoinParity(t *testing.T) {
	greedy := newCHEngine(t, false)
	syntactic := newCHEngine(t, true)
	for _, q := range bench.Queries() {
		if !chJoinQueryIDs[q.ID] {
			continue
		}
		gr, err := bench.RunQuery(greedy, q)
		if err != nil {
			t.Fatalf("greedy Q%d: %v", q.ID, err)
		}
		sr, err := bench.RunQuery(syntactic, q)
		if err != nil {
			t.Fatalf("syntactic Q%d: %v", q.ID, err)
		}
		g, s := renderRows(gr), renderRows(sr)
		if strings.Join(g, "\n") != strings.Join(s, "\n") {
			t.Fatalf("Q%d (%s): greedy and syntactic plans disagree\ngreedy (%d rows):\n%s\nsyntactic (%d rows):\n%s",
				q.ID, q.Name, len(g), strings.Join(g, "\n"), len(s), strings.Join(s, "\n"))
		}
		if len(g) == 0 && q.ID != 16 {
			t.Fatalf("Q%d returned no rows; parity is vacuous", q.ID)
		}
	}
}

// explainQuery returns the EXPLAIN text of a query through the session
// layer (the same path a client uses).
func explainQuery(t *testing.T, e *core.Engine, sqlText string) string {
	t.Helper()
	s := sql.NewSession(e)
	res, err := s.Exec("EXPLAIN " + sqlText)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	var sb strings.Builder
	for _, row := range res.Rows {
		sb.WriteString(row[0].S)
		sb.WriteString("\n")
	}
	return sb.String()
}

// scanOrder extracts the table names of the plan's TableScan leaves in
// plan order (left/probe side first — the join order).
func scanOrder(plan string) []string {
	var out []string
	for _, line := range strings.Split(plan, "\n") {
		i := strings.Index(line, "TableScan(")
		if i < 0 {
			continue
		}
		rest := line[i+len("TableScan("):]
		if j := strings.Index(rest, " "); j >= 0 {
			rest = rest[:j]
		}
		out = append(out, rest)
	}
	return out
}

func chQuery(t *testing.T, id int) bench.Query {
	t.Helper()
	for _, q := range bench.Queries() {
		if q.ID == id {
			return q
		}
	}
	t.Fatalf("no CH query %d", id)
	return bench.Query{}
}

// TestCHMultiJoinPlanShape pins the join order the greedy planner picks
// for each multi-join CH query on the default-scale dataset, and that
// the syntactic engine keeps declared order.
func TestCHMultiJoinPlanShape(t *testing.T) {
	greedy := newCHEngine(t, false)
	syntactic := newCHEngine(t, true)

	// Golden join orders on the default-scale dataset. The greedy
	// column is the statistics-picked order (smallest filtered relation
	// seeds, cheapest join attaches next); the syntactic column is
	// declared order. Data or estimator changes that move these are
	// worth a deliberate re-pin.
	pins := []struct {
		id        int
		greedy    []string
		syntactic []string
	}{
		{3, []string{"orders", "order_line"}, []string{"orders", "order_line"}},
		{5, []string{"orders", "customer", "order_line"}, []string{"customer", "orders", "order_line"}},
		{12, []string{"item", "order_line"}, []string{"order_line", "item"}},
		{14, []string{"item", "order_line", "orders", "customer"}, []string{"order_line", "orders", "customer", "item"}},
		{15, []string{"item", "order_line", "stock"}, []string{"order_line", "stock", "item"}},
		{16, []string{"district", "orders", "order_line"}, []string{"order_line", "orders", "district"}},
		{17, []string{"orders", "new_order"}, []string{"orders", "new_order"}},
	}
	for _, pin := range pins {
		q := chQuery(t, pin.id)
		gp := explainQuery(t, greedy, q.SQL)
		sp := explainQuery(t, syntactic, q.SQL)
		if got := scanOrder(gp); !slicesEqual(got, pin.greedy) {
			t.Errorf("Q%d greedy join order = %v, pinned %v\nplan:\n%s", pin.id, got, pin.greedy, gp)
		}
		if got := scanOrder(sp); !slicesEqual(got, pin.syntactic) {
			t.Errorf("Q%d syntactic join order = %v, pinned %v\nplan:\n%s", pin.id, got, pin.syntactic, sp)
		}
		if !strings.Contains(gp, " est=") {
			t.Errorf("Q%d greedy plan carries no estimates:\n%s", pin.id, gp)
		}
	}

	// Q16: the WHERE clause filters only district (d_w_id = 1), but
	// transitive equality over the join keys must prune the other two
	// scans on their own w_id columns.
	q16 := explainQuery(t, greedy, chQuery(t, 16).SQL)
	for _, want := range []string{"o_w_id=1", "ol_w_id=1", "d_w_id=1"} {
		if !strings.Contains(q16, want) {
			t.Errorf("Q16 plan misses transitive pushdown %q:\n%s", want, q16)
		}
	}

	// Q17: the anti-join stays a left join with the IS NULL filter
	// above it — never reordered, never pushed into the nullable side.
	q17 := explainQuery(t, greedy, chQuery(t, 17).SQL)
	if !strings.Contains(q17, "HashJoin(left") || !strings.Contains(q17, "Filter(no_o_id IS NULL)") {
		t.Errorf("Q17 plan lost the left join or IS NULL residual:\n%s", q17)
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
