package db

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// ErrTxDone is returned by operations on a committed or rolled-back
// transaction.
var ErrTxDone = errors.New("db: transaction has already been committed or rolled back")

// Tx is an explicit transaction. Statements executed through it see the
// transaction's snapshot and its own uncommitted writes; nothing is
// visible to other sessions until Commit. A Tx is not safe for
// concurrent use.
type Tx struct {
	db   *DB
	tx   *core.Tx
	done bool
}

// Exec executes a statement inside the transaction. Statement plans
// come from the DB's plan cache, so repeating a text (e.g. a
// parameterized INSERT in a load loop) parses and plans once.
func (t *Tx) Exec(ctx context.Context, query string, args ...any) (Result, error) {
	if t.done {
		return Result{}, ErrTxDone
	}
	s, err := t.db.stmtFor(query)
	if err != nil {
		return Result{}, err
	}
	return s.exec(ctx, t, args)
}

// Query runs a SELECT inside the transaction, seeing its uncommitted
// writes. The returned Rows must be closed before Commit or Rollback.
func (t *Tx) Query(ctx context.Context, query string, args ...any) (*Rows, error) {
	if t.done {
		return nil, ErrTxDone
	}
	s, err := t.db.stmtFor(query)
	if err != nil {
		return nil, err
	}
	return s.query(ctx, t, args)
}

// QueryRow runs a SELECT expected to return at most one row.
func (t *Tx) QueryRow(ctx context.Context, query string, args ...any) *Row {
	rows, err := t.Query(ctx, query, args...)
	return &Row{rows: rows, err: err}
}

// Stmt executes a DB-prepared statement inside this transaction.
func (t *Tx) Stmt(s *Stmt) *TxStmt { return &TxStmt{tx: t, stmt: s} }

// Commit publishes the transaction's writes.
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	if _, err := t.tx.Commit(); err != nil {
		return fmt.Errorf("db: commit: %w", err)
	}
	return nil
}

// Rollback discards the transaction's writes. Rolling back a finished
// transaction returns ErrTxDone.
func (t *Tx) Rollback() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	return t.tx.Abort()
}

// TxStmt is a prepared statement bound to a transaction.
type TxStmt struct {
	tx   *Tx
	stmt *Stmt
}

// Exec runs the statement in the bound transaction.
func (ts *TxStmt) Exec(ctx context.Context, args ...any) (Result, error) {
	if ts.tx.done {
		return Result{}, ErrTxDone
	}
	return ts.stmt.exec(ctx, ts.tx, args)
}

// Query runs a prepared SELECT in the bound transaction.
func (ts *TxStmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	if ts.tx.done {
		return nil, ErrTxDone
	}
	return ts.stmt.query(ctx, ts.tx, args)
}
