package db

import (
	"context"

	"repro/internal/sql"
)

// Stmt is a prepared statement: parsed and planned once, executed many
// times with fresh arguments. Statements are backed by the DB's plan
// cache, so a Stmt is cheap and two Stmts for the same text share
// compiled plans. Safe for concurrent use (concurrent executions check
// out distinct plan instances).
//
// Outside a transaction each execution auto-commits; to execute inside
// an explicit transaction use Tx.Exec / Tx.Query with the same text —
// the plan cache makes that equally parse-free.
type Stmt struct {
	db   *DB
	plan *cachedPlan
	text string
}

// Text returns the statement text.
func (s *Stmt) Text() string { return s.text }

// NumParams returns the number of `?` placeholders.
func (s *Stmt) NumParams() int { return s.plan.nParams }

// IsQuery reports whether the statement returns rows (SELECT or
// EXPLAIN).
func (s *Stmt) IsQuery() bool {
	switch s.plan.ast.(type) {
	case *sql.SelectStmt, *sql.ExplainStmt:
		return true
	}
	return false
}

// Workload reports the statement's workload class (OLTP point work vs
// OLAP scan work) from its parsed form — the server uses this to pick
// the priority lane without re-parsing.
func (s *Stmt) Workload() Workload { return sql.ClassifyStmt(s.plan.ast) }

// Exec runs the statement with args in an auto-commit transaction.
func (s *Stmt) Exec(ctx context.Context, args ...any) (Result, error) {
	return s.exec(ctx, nil, args)
}

// Query runs a prepared SELECT with args, returning a streaming cursor
// the caller must Close (or drain).
func (s *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	return s.query(ctx, nil, args)
}

// QueryRow runs a prepared SELECT expected to return at most one row.
func (s *Stmt) QueryRow(ctx context.Context, args ...any) *Row {
	rows, err := s.Query(ctx, args...)
	return &Row{rows: rows, err: err}
}

// Close releases the statement handle. The compiled plan stays in the
// DB's cache for future use.
func (s *Stmt) Close() error { return nil }

// exec runs in tx when non-nil, else auto-commits.
func (s *Stmt) exec(ctx context.Context, tx *Tx, args []any) (Result, error) {
	if s.db.isClosed() {
		return Result{}, ErrClosed
	}
	vals, err := toValues(args)
	if err != nil {
		return Result{}, err
	}
	inst, err := s.plan.acquire(s.db.engine)
	if err != nil {
		return Result{}, err
	}
	defer s.plan.release(inst)
	if tx != nil {
		res, err := inst.ExecTx(ctx, tx.tx, vals)
		if err != nil {
			return Result{}, err
		}
		return Result{RowsAffected: res.Affected}, nil
	}
	auto := s.db.engine.Begin()
	res, err := inst.ExecTx(ctx, auto, vals)
	if err != nil {
		auto.Abort()
		return Result{}, err
	}
	if _, err := auto.Commit(); err != nil {
		return Result{}, err
	}
	return Result{RowsAffected: res.Affected}, nil
}

// query runs in tx when non-nil, else under an auto-commit snapshot.
func (s *Stmt) query(ctx context.Context, tx *Tx, args []any) (*Rows, error) {
	if s.db.isClosed() {
		return nil, ErrClosed
	}
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	inst, err := s.plan.acquire(s.db.engine)
	if err != nil {
		return nil, err
	}
	if tx != nil {
		rows, err := newRows(ctx, inst, tx.tx, false, vals, func() { s.plan.release(inst) })
		if err != nil {
			s.plan.release(inst)
			return nil, err
		}
		return rows, nil
	}
	auto := s.db.engine.Begin()
	rows, err := newRows(ctx, inst, auto, true, vals, func() { s.plan.release(inst) })
	if err != nil {
		auto.Abort()
		s.plan.release(inst)
		return nil, err
	}
	return rows, nil
}
