package db

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sql"
)

// maxFreeInstances bounds the compiled-plan instances retained per
// statement text (beyond this, instances returned by finished
// executions are dropped).
const maxFreeInstances = 4

// cachedPlan is one statement text's entry in the plan cache: the
// parsed AST plus a pool of compiled instances. An instance (operator
// tree + binding slots) runs one execution at a time, so concurrent
// executions of the same text check out distinct instances; sequential
// executions reuse one, which is what makes "executed N times, planned
// once" hold.
type cachedPlan struct {
	text    string
	ast     sql.Stmt
	nParams int

	mu   sync.Mutex
	free []*sql.Prepared

	compiles *atomic.Uint64 // shared with the cache's global counter
}

// acquire checks out an instance, compiling a fresh one when the pool
// is empty.
func (c *cachedPlan) acquire(e *core.Engine) (*sql.Prepared, error) {
	c.mu.Lock()
	if n := len(c.free); n > 0 {
		inst := c.free[n-1]
		c.free = c.free[:n-1]
		c.mu.Unlock()
		return inst, nil
	}
	c.mu.Unlock()
	inst, err := sql.PrepareParsed(e, c.text, c.ast, c.nParams)
	if err != nil {
		return nil, err
	}
	if inst.IsQuery() {
		// Only SELECTs compile an operator tree; DML instances are just
		// a binder over the shared AST.
		c.compiles.Add(1)
	}
	return inst, nil
}

// release returns an instance to the pool.
func (c *cachedPlan) release(inst *sql.Prepared) {
	if inst == nil {
		return
	}
	inst.CloseCursor()
	c.mu.Lock()
	if len(c.free) < maxFreeInstances {
		c.free = append(c.free, inst)
	}
	c.mu.Unlock()
}

// planCache maps statement text to cachedPlan with LRU eviction.
type planCache struct {
	mu    sync.Mutex
	m     map[string]*cachedPlan
	order []string // least recently used first

	max      int
	hits     atomic.Uint64
	misses   atomic.Uint64
	compiles atomic.Uint64
}

func newPlanCache(max int) *planCache {
	return &planCache{m: make(map[string]*cachedPlan), max: max}
}

// lookup returns the cached plan for text, parsing it on a miss.
func (pc *planCache) lookup(e *core.Engine, text string) (*cachedPlan, error) {
	if pc.max > 0 {
		pc.mu.Lock()
		if plan, ok := pc.m[text]; ok {
			pc.touch(text)
			pc.mu.Unlock()
			pc.hits.Add(1)
			return plan, nil
		}
		pc.mu.Unlock()
	}
	pc.misses.Add(1)
	ast, nParams, err := sql.ParseWithParams(text)
	if err != nil {
		return nil, err
	}
	plan := &cachedPlan{text: text, ast: ast, nParams: nParams, compiles: &pc.compiles}
	if pc.max > 0 {
		pc.mu.Lock()
		if winner, ok := pc.m[text]; ok {
			// Lost a race with a concurrent parse; keep the winner.
			plan = winner
			pc.touch(text)
		} else {
			pc.m[text] = plan
			pc.order = append(pc.order, text)
			for len(pc.m) > pc.max {
				evict := pc.order[0]
				pc.order = pc.order[1:]
				delete(pc.m, evict)
			}
		}
		pc.mu.Unlock()
	}
	return plan, nil
}

// touch moves text to the most-recently-used end. Caller holds mu.
func (pc *planCache) touch(text string) {
	for i, t := range pc.order {
		if t == text {
			pc.order = append(append(pc.order[:i:i], pc.order[i+1:]...), text)
			return
		}
	}
}

func (pc *planCache) stats() Stats {
	return Stats{
		PlanCacheHits:   pc.hits.Load(),
		PlanCacheMisses: pc.misses.Load(),
		PlansCompiled:   pc.compiles.Load(),
	}
}
