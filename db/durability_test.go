package db

import (
	"context"
	"strings"
	"testing"

	"repro/internal/wal"
)

// TestDirDurableRoundTrip drives the full public-API durability cycle:
// create/commit/checkpoint through SQL, simulate a crash (close without
// checkpointing the tail), reopen, and query the recovered state.
func TestDirDurableRoundTrip(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	d, err := Open(Options{Dir: dir, Sync: SyncSync, WALSegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, `CREATE TABLE kv (k BIGINT, v VARCHAR, PRIMARY KEY (k))`)
	for i := 0; i < 10; i++ {
		mustExec(t, d, `INSERT INTO kv VALUES (?, ?)`, i, "pre")
	}
	ckptLSN, err := d.Checkpoint(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ckptLSN == 0 {
		t.Fatal("checkpoint covered LSN 0")
	}
	// Segments wholly below the checkpoint are gone.
	for _, seg := range d.Engine().Log().Segments() {
		recs := readSegment(t, dir, seg)
		if len(recs) > 0 && recs[len(recs)-1].LSN <= ckptLSN {
			t.Fatalf("segment %s lies wholly below checkpoint LSN %d but survived", seg, ckptLSN)
		}
	}
	// Post-checkpoint tail: updates, deletes, and new rows.
	mustExec(t, d, `UPDATE kv SET v = 'post' WHERE k = 3`)
	mustExec(t, d, `DELETE FROM kv WHERE k = 7`)
	mustExec(t, d, `INSERT INTO kv VALUES (100, 'tail')`)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" recovery: reopen and query.
	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	var n int
	if err := d2.QueryRow(ctx, `SELECT COUNT(*) FROM kv`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("recovered %d rows, want 10", n)
	}
	var v string
	if err := d2.QueryRow(ctx, `SELECT v FROM kv WHERE k = 3`).Scan(&v); err != nil || v != "post" {
		t.Fatalf("k=3: %q, %v", v, err)
	}
	if err := d2.QueryRow(ctx, `SELECT v FROM kv WHERE k = 7`).Scan(&v); err != ErrNoRows {
		t.Fatalf("k=7 should be deleted, got %q, %v", v, err)
	}
	if err := d2.QueryRow(ctx, `SELECT v FROM kv WHERE k = 100`).Scan(&v); err != nil || v != "tail" {
		t.Fatalf("k=100: %q, %v", v, err)
	}
	// The recovered database keeps working end-to-end.
	mustExec(t, d2, `INSERT INTO kv VALUES (101, 'after')`)
	if _, err := d2.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
}

func readSegment(t *testing.T, dir, name string) []wal.Record {
	t.Helper()
	f, err := wal.OSFS{}.Open(dir + "/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, _ := wal.ScanRecords(f)
	return recs
}

func TestDirCheckpointRequiresDir(t *testing.T) {
	d := openTest(t, Options{})
	if _, err := d.Checkpoint(context.Background()); err == nil || !strings.Contains(err.Error(), "Dir") {
		t.Fatalf("want Dir-required error, got %v", err)
	}
}
