package db

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/types"
)

// Rows is a streaming cursor over a query result. It offers two
// consumption styles:
//
//   - Row-at-a-time: for rows.Next() { rows.Scan(&a, &b) } — the
//     familiar OLTP shape.
//   - Batch-at-a-time: for { b, err := rows.NextBatch(); ... } — the
//     vectorized shape; analytic consumers keep column batches
//     end-to-end with no per-row materialization.
//
// Batches returned by NextBatch are valid only until the next
// NextBatch/Next call (the execution pipeline reuses buffers); retain
// with Batch.Copy. Do not interleave the two styles.
//
// Rows must be closed (Close is idempotent; full iteration to the end
// followed by Close is the canonical pattern). An open Rows pins the
// query's snapshot transaction, the scan producers, and — while a scan
// is in flight — the table's storage read-latch, so long-idle open
// cursors delay delta-merges.
type Rows struct {
	inst *sql.Prepared
	op   exec.Operator
	ctx  context.Context

	tx         *core.Tx
	autoCommit bool
	onClose    func()

	cur    *types.Batch
	idx    int
	err    error
	closed bool
}

// newRows binds one execution of inst in tx and wraps it in a cursor.
func newRows(ctx context.Context, inst *sql.Prepared, tx *core.Tx, autoCommit bool, args []types.Value, onClose func()) (*Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	op, err := inst.BindQuery(ctx, tx, args)
	if err != nil {
		return nil, err
	}
	return &Rows{inst: inst, op: op, ctx: ctx, tx: tx, autoCommit: autoCommit, onClose: onClose}, nil
}

// Schema describes the result columns.
func (r *Rows) Schema() *types.Schema { return r.op.Schema() }

// Columns returns the result column names.
func (r *Rows) Columns() []string {
	s := r.op.Schema()
	names := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		names[i] = c.Name
	}
	return names
}

// NextBatch returns the next vectorized batch, or nil at end of stream
// (after which Err is nil) or on error (Err set; context cancellation
// surfaces as ctx.Err()). The batch is valid until the next
// NextBatch/Next call.
func (r *Rows) NextBatch() (*types.Batch, error) {
	if r.closed || r.err != nil {
		return nil, r.err
	}
	if err := r.ctx.Err(); err != nil {
		r.fail(err)
		return nil, err
	}
	b, err := r.op.Next()
	if err != nil {
		r.fail(err)
		return nil, err
	}
	if b == nil {
		// End of stream: Close commits an auto-commit snapshot; a commit
		// failure must surface to the consumer, not vanish.
		if cerr := r.Close(); cerr != nil {
			return nil, cerr
		}
	}
	return b, nil
}

// Next advances the row cursor, reporting whether a row is available
// for Scan. After Close (or an error) it always reports false.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.cur != nil {
		r.idx++
	}
	for r.cur == nil || r.idx >= r.cur.Len() {
		if r.closed || r.err != nil {
			return false
		}
		b, err := r.NextBatch()
		if err != nil || b == nil {
			return false
		}
		//oadb:allow-batchescape cursor contract: r.cur is released before the next NextBatch call and Scan copies values out
		r.cur, r.idx = b, 0
	}
	return true
}

// Scan copies the current row's columns into dest, which must hold one
// pointer per column: *int64, *int, *float64, *string, *bool,
// *types.Value, or *any. NULLs scan as the zero value into typed
// destinations and as a Null types.Value / nil any.
func (r *Rows) Scan(dest ...any) error {
	if r.closed {
		return fmt.Errorf("db: Scan called after Close")
	}
	if r.cur == nil || r.idx >= r.cur.Len() {
		return fmt.Errorf("db: Scan called without a successful Next")
	}
	n := len(r.cur.Cols)
	if len(dest) != n {
		return fmt.Errorf("db: Scan got %d destinations for %d columns", len(dest), n)
	}
	ri := r.cur.RowIdx(r.idx)
	for i := 0; i < n; i++ {
		if err := scanValue(r.cur.Cols[i].Get(ri), dest[i]); err != nil {
			return fmt.Errorf("db: column %d: %w", i, err)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. It is nil
// after a complete, successful iteration.
func (r *Rows) Err() error { return r.err }

// fail records err and releases resources, aborting an auto-commit
// snapshot.
func (r *Rows) fail(err error) {
	r.err = err
	r.release(false)
}

// Close terminates the query, releasing the scan producers, the plan
// instance, and the auto-commit snapshot transaction. Closing after an
// error keeps Err; closing mid-stream discards unread rows. Idempotent.
func (r *Rows) Close() error {
	r.release(r.err == nil)
	return r.err
}

func (r *Rows) release(commit bool) {
	if r.closed {
		return
	}
	r.closed = true
	// Stop scan producers (and their morsel workers) before ending the
	// snapshot they read under.
	r.inst.CloseCursor()
	if r.autoCommit {
		if commit {
			if _, err := r.tx.Commit(); err != nil && r.err == nil {
				r.err = err
			}
		} else {
			r.tx.Abort()
		}
	}
	if r.onClose != nil {
		r.onClose()
		r.onClose = nil
	}
}

// Row is the result of QueryRow: a query expected to return at most
// one row, with errors deferred to Scan.
type Row struct {
	rows *Rows
	err  error
}

// Scan copies the single result row into dest (see Rows.Scan), closing
// the underlying cursor. It returns ErrNoRows if the query matched
// nothing.
func (row *Row) Scan(dest ...any) (err error) {
	if row.err != nil {
		return row.err
	}
	defer func() {
		if cerr := row.rows.Close(); err == nil {
			err = cerr
		}
	}()
	if !row.rows.Next() {
		if err := row.rows.Err(); err != nil {
			return err
		}
		return ErrNoRows
	}
	return row.rows.Scan(dest...)
}

// scanValue converts one engine value into a Go destination pointer.
func scanValue(v types.Value, dest any) error {
	switch d := dest.(type) {
	case *types.Value:
		*d = v
	case *any:
		if v.Null {
			*d = nil
			return nil
		}
		switch v.Typ {
		case types.Int64:
			*d = v.I
		case types.Float64:
			*d = v.F
		case types.String:
			*d = v.S
		case types.Bool:
			*d = v.I != 0
		}
	case *int64:
		if v.Null {
			*d = 0
			return nil
		}
		switch v.Typ {
		case types.Int64, types.Bool:
			*d = v.I
		case types.Float64:
			*d = int64(v.F)
		default:
			return fmt.Errorf("cannot scan %s into *int64", v.Typ)
		}
	case *int:
		var x int64
		if err := scanValue(v, &x); err != nil {
			return fmt.Errorf("cannot scan %s into *int", v.Typ)
		}
		*d = int(x)
	case *float64:
		if v.Null {
			*d = 0
			return nil
		}
		switch v.Typ {
		case types.Float64:
			*d = v.F
		case types.Int64:
			*d = float64(v.I)
		default:
			return fmt.Errorf("cannot scan %s into *float64", v.Typ)
		}
	case *string:
		if v.Null {
			*d = ""
			return nil
		}
		if v.Typ != types.String {
			return fmt.Errorf("cannot scan %s into *string", v.Typ)
		}
		*d = v.S
	case *bool:
		if v.Null {
			*d = false
			return nil
		}
		if v.Typ != types.Bool {
			return fmt.Errorf("cannot scan %s into *bool", v.Typ)
		}
		*d = v.I != 0
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return nil
}
