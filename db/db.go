// Package db is the public front door to the oadms engine: a
// context-aware, prepared-statement-capable API over the dual-format
// (delta row store + compressed column store) storage and the
// vectorized execution pipeline.
//
// The design mirrors database/sql where that helps familiarity —
// Open/Close, Exec/Query/QueryRow, Prepare, Begin — with one deliberate
// departure: Rows exposes the vectorized result stream directly via
// NextBatch, so analytic consumers can keep column batches end-to-end
// instead of paying a per-row materialization. Row-at-a-time
// Next/Scan remains available for OLTP-style access.
//
// Every statement entry point takes a context.Context. Cancellation
// propagates through the operator tree into the storage scans: a
// cancelled analytic query stops within one batch boundary, its morsel
// workers exit, and Rows surfaces ctx.Err().
//
// Statements may contain `?` placeholders (positional). Prepared
// statements compile their plan once and rebind arguments per
// execution; ad-hoc Exec/Query calls share the same machinery through
// a plan cache keyed by statement text, so repeating an ad-hoc
// statement also skips the parser and planner.
package db

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sql"
	"repro/internal/types"
)

// Mode selects the engine's concurrency-control mechanism.
type Mode = core.ConcurrencyMode

// Concurrency modes.
const (
	// MVCC is snapshot isolation via multiversioning (default):
	// analytic readers never block writers.
	MVCC = core.ModeMVCC
	// TwoPL is strict two-phase locking, the classical baseline.
	TwoPL = core.Mode2PL
)

// SyncMode selects the WAL durability discipline for Dir-backed
// databases.
type SyncMode = core.SyncMode

// Durability modes.
const (
	// SyncGroup (default): commits wait until durable; a dedicated
	// flusher batches all concurrently queued commit groups per fsync,
	// accumulating for GroupCommitWindow.
	SyncGroup = core.SyncGroup
	// SyncSync: commits wait until durable with no accumulation window
	// (groups still batch naturally while an fsync is in flight).
	SyncSync = core.SyncSync
	// SyncAsync: commits return once enqueued; durability is deferred to
	// rotation, checkpoint, or close.
	SyncAsync = core.SyncAsync
	// SyncEach: one inline fsync per commit (the classical convoy;
	// baseline for benchmarks).
	SyncEach = core.SyncEach
)

// Options configures Open.
type Options struct {
	// Mode selects MVCC (default) or TwoPL.
	Mode Mode
	// LockTimeout bounds 2PL lock waits (default 100ms).
	LockTimeout time.Duration
	// Dir, when set, makes the database durable: a segmented
	// group-commit WAL and checkpoint files live in this directory, and
	// Open on an existing directory recovers the previous state (last
	// checkpoint plus WAL tail, tolerating a torn tail from a crash).
	Dir string
	// Sync selects the commit durability mode for Dir (default
	// SyncGroup).
	Sync SyncMode
	// GroupCommitWindow is SyncGroup's fsync accumulation window
	// (default 200µs).
	GroupCommitWindow time.Duration
	// WALSegmentSize is the WAL segment rotation threshold for Dir
	// (default 16 MiB).
	WALSegmentSize int64
	// WALPath, when set, enables legacy single-file write-ahead logging
	// to this file. Superseded by Dir.
	WALPath string
	// WALSync forces an fsync per commit (legacy WALPath logging only).
	WALSync bool
	// MergeThreshold is the delta live-row count that triggers an
	// automatic merge (default 64k rows).
	MergeThreshold int
	// Parallelism is the worker count for analytic column-store scans
	// and the parallel operator pipelines above them (filter, partial
	// aggregation, join build, sort runs all execute on the morsel
	// workers). <= 0 defaults to runtime.GOMAXPROCS(0) — use every
	// core; set 1 explicitly to force single-threaded execution.
	Parallelism int
	// AutoMergeEvery, when > 0, starts a background delta-merge daemon
	// with this interval. Close stops and awaits it.
	AutoMergeEvery time.Duration
	// PlanCacheSize caps the number of statement texts whose plans are
	// cached (default 64; negative disables the cache).
	PlanCacheSize int
}

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("db: database is closed")

// ErrNoRows is returned by Row.Scan when the query matched nothing.
var ErrNoRows = errors.New("db: no rows in result set")

// ErrTypeMismatch is wrapped by errors from values that do not fit
// their target column or comparison (see errors.Is).
var ErrTypeMismatch = sql.ErrTypeMismatch

// ErrPoisoned is wrapped by every error from a database that suffered a
// durability failure after a commit became visible: the in-memory state
// is ahead of the durable log, so the engine refuses all further work
// (reads included). Restart the process to recover the durable prefix.
var ErrPoisoned = core.ErrPoisoned

// DB is a handle to one engine instance. It is safe for concurrent use
// by multiple goroutines.
type DB struct {
	engine    *core.Engine
	cache     *planCache
	closed    chan struct{} // closed by Close
	closeOnce sync.Once
}

// Open creates an engine and returns the database handle.
func Open(opts Options) (*DB, error) {
	eng, err := core.NewEngine(core.Options{
		Mode:              opts.Mode,
		LockTimeout:       opts.LockTimeout,
		Dir:               opts.Dir,
		Sync:              opts.Sync,
		GroupCommitWindow: opts.GroupCommitWindow,
		WALSegmentSize:    opts.WALSegmentSize,
		WALPath:           opts.WALPath,
		WALSync:           opts.WALSync,
		MergeThreshold:    opts.MergeThreshold,
		Parallelism:       opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	size := opts.PlanCacheSize
	if size == 0 {
		size = 64
	}
	d := &DB{engine: eng, cache: newPlanCache(size), closed: make(chan struct{})}
	if opts.AutoMergeEvery > 0 {
		eng.StartAutoMerge(opts.AutoMergeEvery)
	}
	return d, nil
}

// Close shuts the database down: it stops the auto-merge daemon and
// closes the WAL. Close is idempotent. Open cursors and transactions
// become invalid.
func (d *DB) Close() error {
	d.closeOnce.Do(func() { close(d.closed) })
	return d.engine.Close()
}

// Engine exposes the underlying engine for callers that need to step
// below SQL (bulk loaders, benchmarks, table statistics). The db API
// and direct engine transactions share one MVCC timestamp space, so
// mixing them is safe.
func (d *DB) Engine() *core.Engine { return d.engine }

func (d *DB) isClosed() bool {
	select {
	case <-d.closed:
		return true
	default:
		return false
	}
}

// Result reports what a non-query statement did.
type Result struct {
	// RowsAffected counts rows written by INSERT/UPDATE/DELETE.
	RowsAffected int
}

// stmtFor resolves query through the plan cache into a statement
// handle (the shared execution plumbing lives on Stmt).
func (d *DB) stmtFor(query string) (*Stmt, error) {
	if d.isClosed() {
		return nil, ErrClosed
	}
	plan, err := d.cache.lookup(d.engine, query)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: d, plan: plan, text: query}, nil
}

// Exec executes a statement that returns no rows (DDL or DML; a SELECT
// is executed and its rows discarded). Placeholders bind to args in
// order. Outside a transaction the statement auto-commits.
func (d *DB) Exec(ctx context.Context, query string, args ...any) (Result, error) {
	s, err := d.stmtFor(query)
	if err != nil {
		return Result{}, err
	}
	return s.exec(ctx, nil, args)
}

// Query executes a SELECT and returns a streaming cursor. The caller
// MUST Close the returned Rows (or drain it to the end): the cursor
// holds the query's snapshot transaction and the scan's resources
// until then. Cancelling ctx aborts the query within one batch
// boundary.
func (d *DB) Query(ctx context.Context, query string, args ...any) (*Rows, error) {
	s, err := d.stmtFor(query)
	if err != nil {
		return nil, err
	}
	return s.query(ctx, nil, args)
}

// QueryRow executes a SELECT expected to return at most one row. Errors
// are deferred to Row.Scan.
func (d *DB) QueryRow(ctx context.Context, query string, args ...any) *Row {
	rows, err := d.Query(ctx, query, args...)
	return &Row{rows: rows, err: err}
}

// Prepare parses and plans a statement once for repeated execution.
// The prepared statement shares the DB's plan cache, so preparing the
// same text twice reuses the compiled plan.
func (d *DB) Prepare(ctx context.Context, query string) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := d.stmtFor(query)
	if err != nil {
		return nil, err
	}
	// Compile (or reuse) one instance eagerly so Prepare surfaces
	// planning errors and Stmt executions start hot.
	inst, err := s.plan.acquire(d.engine)
	if err != nil {
		return nil, err
	}
	s.plan.release(inst)
	return s, nil
}

// Begin starts an explicit transaction.
func (d *DB) Begin(ctx context.Context) (*Tx, error) {
	if d.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Tx{db: d, tx: d.engine.Begin()}, nil
}

// Checkpoint snapshots every table at one consistent MVCC timestamp
// into a checkpoint file and truncates WAL segments wholly below the
// covered LSN, bounding recovery time and log size. It requires a
// Dir-backed database. Commits proceed concurrently; a cancelled ctx
// stops the snapshot scan at a zone boundary and abandons the temp
// file, leaving the published checkpoint set untouched.
func (d *DB) Checkpoint(ctx context.Context) (uint64, error) {
	if d.isClosed() {
		return 0, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return d.engine.Checkpoint(ctx)
}

// Workload partitions statements into the server's priority lanes:
// short latency-critical OLTP work vs long throughput-oriented OLAP
// work. See sql.ClassifyStmt for the classification rules.
type Workload = sql.Workload

// Workload classes.
const (
	// WorkloadOLTP: DML, DDL, and filtered single-table lookups.
	WorkloadOLTP = sql.WorkloadOLTP
	// WorkloadOLAP: joins, aggregates, sorts, unpredicated scans, and
	// delta merges.
	WorkloadOLAP = sql.WorkloadOLAP
)

// Classify reports which workload class query belongs to, parsing it
// through the plan cache (a cached text classifies without a parse).
func (d *DB) Classify(query string) (Workload, error) {
	s, err := d.stmtFor(query)
	if err != nil {
		return WorkloadOLTP, err
	}
	return s.Workload(), nil
}

// Stats is a snapshot of the DB's statement-cache counters.
type Stats struct {
	// PlanCacheHits counts statement executions that found their text
	// in the plan cache (no parse).
	PlanCacheHits uint64
	// PlanCacheMisses counts executions that had to parse.
	PlanCacheMisses uint64
	// PlansCompiled counts operator-tree compilations (a prepared
	// statement executed N times sequentially compiles once).
	PlansCompiled uint64
}

// Stats returns current counter values.
func (d *DB) Stats() Stats { return d.cache.stats() }

// toValues converts Go arguments to engine values.
func toValues(args []any) ([]types.Value, error) {
	vals := make([]types.Value, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case nil:
			vals[i] = types.Value{Null: true}
		case int:
			vals[i] = types.NewInt(int64(v))
		case int32:
			vals[i] = types.NewInt(int64(v))
		case int64:
			vals[i] = types.NewInt(v)
		case float32:
			vals[i] = types.NewFloat(float64(v))
		case float64:
			vals[i] = types.NewFloat(v)
		case string:
			vals[i] = types.NewString(v)
		case bool:
			vals[i] = types.NewBool(v)
		case types.Value:
			vals[i] = v
		default:
			return nil, fmt.Errorf("db: unsupported argument %d type %T", i+1, a)
		}
	}
	return vals, nil
}
