package db

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestAggregateCancelParallelPipeline: cancelling a grouped-aggregate
// query on a parallel engine must surface context.Canceled through the
// public cursor — the breaker merge does not emit a partial result —
// and every morsel worker must exit (the pipeline drain is synchronous,
// so no goroutines may linger).
func TestAggregateCancelParallelPipeline(t *testing.T) {
	d := openTest(t, Options{Parallelism: 4})
	loadBig(t, d, 60_000)
	if _, err := d.Engine().Merge("big"); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := d.Query(ctx, `SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel before the first pull: the aggregate drains its whole
	// pipeline on the first NextBatch, which must observe the
	// cancellation at the scan and propagate it out of the merge.
	cancel()
	if _, err := rows.NextBatch(); !errors.Is(err, context.Canceled) {
		t.Fatalf("NextBatch after cancel: err = %v, want context.Canceled", err)
	}
	rows.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if runtime.NumGoroutine() > before {
		t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
	}

	// The engine stays healthy: the same statement re-runs to completion
	// with a fresh context (plan-cache instance reuse after an aborted
	// pipeline execution).
	var grp, n int64
	var sum float64
	rows2, err := d.Query(context.Background(), `SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	groups := 0
	var total int64
	for rows2.Next() {
		if err := rows2.Scan(&grp, &n, &sum); err != nil {
			t.Fatal(err)
		}
		groups++
		total += n
	}
	if err := rows2.Err(); err != nil {
		t.Fatal(err)
	}
	if groups != 97 || total != 60_000 {
		t.Fatalf("re-run after cancel: %d groups / %d rows, want 97 / 60000", groups, total)
	}
}
