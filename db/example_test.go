package db_test

import (
	"context"
	"fmt"
	"log"

	"repro/db"
)

// ExampleOpen shows the end-to-end shape: open, write with
// placeholders, stream a query, close.
func ExampleOpen() {
	ctx := context.Background()
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	if _, err := d.Exec(ctx, `CREATE TABLE orders (id BIGINT, region VARCHAR, amount DOUBLE, PRIMARY KEY (id))`); err != nil {
		log.Fatal(err)
	}
	for i, amount := range []float64{120, 80, 200} {
		if _, err := d.Exec(ctx, `INSERT INTO orders VALUES (?, ?, ?)`, i, "EU", amount); err != nil {
			log.Fatal(err)
		}
	}

	var n int64
	var total float64
	if err := d.QueryRow(ctx, `SELECT COUNT(*), SUM(amount) FROM orders`).Scan(&n, &total); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d orders, %.0f total\n", n, total)
	// Output: 3 orders, 400 total
}

// ExampleDB_Query streams a result row-at-a-time.
func ExampleDB_Query() {
	ctx := context.Background()
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	d.Exec(ctx, `CREATE TABLE t (id BIGINT, name VARCHAR, PRIMARY KEY (id))`)
	d.Exec(ctx, `INSERT INTO t VALUES (1, 'ada'), (2, 'bob')`)

	rows, err := d.Query(ctx, `SELECT id, name FROM t ORDER BY id`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var id int64
		var name string
		if err := rows.Scan(&id, &name); err != nil {
			log.Fatal(err)
		}
		fmt.Println(id, name)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// 1 ada
	// 2 bob
}

// ExampleDB_Prepare compiles a statement once and rebinds it per
// execution.
func ExampleDB_Prepare() {
	ctx := context.Background()
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	d.Exec(ctx, `CREATE TABLE t (id BIGINT, grp VARCHAR, PRIMARY KEY (id))`)
	d.Exec(ctx, `INSERT INTO t VALUES (1, 'a'), (2, 'a'), (3, 'b')`)

	stmt, err := d.Prepare(ctx, `SELECT COUNT(*) FROM t WHERE grp = ?`)
	if err != nil {
		log.Fatal(err)
	}
	for _, grp := range []string{"a", "b"} {
		var n int64
		if err := stmt.QueryRow(ctx, grp).Scan(&n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d\n", grp, n)
	}
	fmt.Println("plans compiled:", d.Stats().PlansCompiled)
	// Output:
	// a: 2
	// b: 1
	// plans compiled: 1
}

// ExampleRows_NextBatch consumes a result vectorized,
// batch-at-a-time — the analytic fast path.
func ExampleRows_NextBatch() {
	ctx := context.Background()
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	d.Exec(ctx, `CREATE TABLE m (id BIGINT, v BIGINT, PRIMARY KEY (id))`)
	d.Exec(ctx, `INSERT INTO m VALUES (1, 10), (2, 20), (3, 30)`)

	rows, err := d.Query(ctx, `SELECT v FROM m`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	var sum int64
	for {
		b, err := rows.NextBatch()
		if err != nil {
			log.Fatal(err)
		}
		if b == nil {
			break
		}
		col := b.Cols[0] // batch is valid until the next NextBatch call
		for i := 0; i < b.Len(); i++ {
			sum += col.Ints[b.RowIdx(i)]
		}
	}
	fmt.Println("sum:", sum)
	// Output: sum: 60
}

// ExampleDB_Begin shows explicit transactions: invisible until commit.
func ExampleDB_Begin() {
	ctx := context.Background()
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	d.Exec(ctx, `CREATE TABLE acct (id BIGINT, bal BIGINT, PRIMARY KEY (id))`)
	d.Exec(ctx, `INSERT INTO acct VALUES (1, 100)`)

	tx, err := d.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `UPDATE acct SET bal = bal - ? WHERE id = ?`, 40, 1); err != nil {
		log.Fatal(err)
	}
	var outside int64
	d.QueryRow(ctx, `SELECT bal FROM acct WHERE id = 1`).Scan(&outside)
	fmt.Println("outside before commit:", outside)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	d.QueryRow(ctx, `SELECT bal FROM acct WHERE id = 1`).Scan(&outside)
	fmt.Println("outside after commit:", outside)
	// Output:
	// outside before commit: 100
	// outside after commit: 60
}
