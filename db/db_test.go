package db

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/types"
)

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	d, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func mustExec(t *testing.T, d *DB, q string, args ...any) Result {
	t.Helper()
	res, err := d.Exec(context.Background(), q, args...)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func setupItems(t *testing.T, d *DB) {
	t.Helper()
	mustExec(t, d, `CREATE TABLE items (id BIGINT, cat VARCHAR, qty BIGINT, price DOUBLE, PRIMARY KEY (id))`)
	mustExec(t, d, `INSERT INTO items VALUES
		(1, 'fruit', 10, 1.5),
		(2, 'fruit', 20, 2.5),
		(3, 'veg', 30, 0.5),
		(4, 'veg', 40, 1.0),
		(5, 'meat', 50, 9.0)`)
}

func TestQueryRowScan(t *testing.T) {
	d := openTest(t, Options{})
	setupItems(t, d)
	var n int64
	var total float64
	err := d.QueryRow(context.Background(),
		`SELECT COUNT(*), SUM(qty * price) FROM items`).Scan(&n, &total)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || total != 10*1.5+20*2.5+30*0.5+40*1.0+50*9.0 {
		t.Fatalf("n=%d total=%v", n, total)
	}
}

func TestQueryStreamsRows(t *testing.T) {
	d := openTest(t, Options{})
	setupItems(t, d)
	rows, err := d.Query(context.Background(), `SELECT id, cat, qty FROM items ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); len(got) != 3 || got[1] != "cat" {
		t.Fatalf("columns = %v", got)
	}
	var ids []int64
	for rows.Next() {
		var id, qty int64
		var cat string
		if err := rows.Scan(&id, &cat, &qty); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || ids[0] != 1 || ids[4] != 5 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestQueryNextBatchVectorized(t *testing.T) {
	d := openTest(t, Options{})
	setupItems(t, d)
	rows, err := d.Query(context.Background(), `SELECT qty FROM items`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var sum int64
	for {
		b, err := rows.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		col := b.Cols[0]
		for i := 0; i < b.Len(); i++ {
			sum += col.Ints[b.RowIdx(i)]
		}
	}
	if sum != 150 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestPreparedSelectPlansOnce(t *testing.T) {
	d := openTest(t, Options{})
	setupItems(t, d)
	stmt, err := d.Prepare(context.Background(), `SELECT id FROM items WHERE qty > ? ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	base := d.Stats().PlansCompiled
	for i := 0; i < 20; i++ {
		rows, err := stmt.Query(context.Background(), int64(10*i%50))
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Stats().PlansCompiled; got != base {
		t.Fatalf("prepared SELECT recompiled: %d plans after 20 executions (had %d)", got, base)
	}
}

func TestPreparedRebinding(t *testing.T) {
	d := openTest(t, Options{})
	setupItems(t, d)
	// Merge so the parameter-valued predicate exercises the pushed-down
	// column-store path, not just the delta.
	mustExec(t, d, `MERGE TABLE items`)
	stmt, err := d.Prepare(context.Background(), `SELECT COUNT(*) FROM items WHERE cat = ?`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"fruit": 2, "veg": 2, "meat": 1, "nope": 0}
	for cat, n := range want {
		for round := 0; round < 3; round++ {
			var got int64
			if err := stmt.QueryRow(context.Background(), cat).Scan(&got); err != nil {
				t.Fatal(err)
			}
			if got != n {
				t.Fatalf("cat %q round %d: got %d want %d", cat, round, got, n)
			}
		}
	}
	// Param type mismatch against the column is a typed error.
	_, err = stmt.Query(context.Background(), int64(7))
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestPreparedInsertRebinding(t *testing.T) {
	d := openTest(t, Options{})
	mustExec(t, d, `CREATE TABLE kv (k BIGINT, v VARCHAR, PRIMARY KEY (k))`)
	stmt, err := d.Prepare(context.Background(), `INSERT INTO kv VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := stmt.Exec(context.Background(), int64(i), fmt.Sprintf("v%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsAffected != 1 {
			t.Fatalf("affected = %d", res.RowsAffected)
		}
	}
	var n int64
	if err := d.QueryRow(context.Background(), `SELECT COUNT(*) FROM kv`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("count = %d", n)
	}
	var v string
	if err := d.QueryRow(context.Background(), `SELECT v FROM kv WHERE k = ?`, 7).Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v != "v7" {
		t.Fatalf("v = %q", v)
	}
}

func TestPlanCacheAdHocHits(t *testing.T) {
	d := openTest(t, Options{})
	setupItems(t, d)
	const q = `SELECT COUNT(*) FROM items WHERE qty >= ?`
	for i := 0; i < 5; i++ {
		var n int64
		if err := d.QueryRow(context.Background(), q, 0).Scan(&n); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.PlanCacheHits < 4 {
		t.Fatalf("stats = %+v, want >= 4 hits", st)
	}
}

func TestTransactionVisibility(t *testing.T) {
	d := openTest(t, Options{})
	setupItems(t, d)
	ctx := context.Background()

	tx, err := d.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `UPDATE items SET qty = ? WHERE id = ?`, 999, 1); err != nil {
		t.Fatal(err)
	}
	// The writer sees its own write.
	var qty int64
	if err := tx.QueryRow(ctx, `SELECT qty FROM items WHERE id = 1`).Scan(&qty); err != nil {
		t.Fatal(err)
	}
	if qty != 999 {
		t.Fatalf("own write invisible: qty = %d", qty)
	}
	// A concurrent auto-commit reader does not.
	if err := d.QueryRow(ctx, `SELECT qty FROM items WHERE id = 1`).Scan(&qty); err != nil {
		t.Fatal(err)
	}
	if qty != 10 {
		t.Fatalf("dirty read: qty = %d", qty)
	}
	// ROLLBACK restores.
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := d.QueryRow(ctx, `SELECT qty FROM items WHERE id = 1`).Scan(&qty); err != nil {
		t.Fatal(err)
	}
	if qty != 10 {
		t.Fatalf("rollback failed: qty = %d", qty)
	}
	// COMMIT publishes.
	tx2, err := d.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec(ctx, `UPDATE items SET qty = ? WHERE id = ?`, 111, 1); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.QueryRow(ctx, `SELECT qty FROM items WHERE id = 1`).Scan(&qty); err != nil {
		t.Fatal(err)
	}
	if qty != 111 {
		t.Fatalf("commit not visible: qty = %d", qty)
	}
	// Finished transactions refuse further work.
	if _, err := tx2.Exec(ctx, `SELECT 1`); !errors.Is(err, ErrTxDone) {
		t.Fatalf("want ErrTxDone, got %v", err)
	}
}

// loadBig creates table big with n rows and merges it into the column
// store through the low-level engine API (bulk load).
func loadBig(t *testing.T, d *DB, n int) {
	t.Helper()
	mustExec(t, d, `CREATE TABLE big (id BIGINT, grp BIGINT, val DOUBLE, PRIMARY KEY (id))`)
	eng := d.Engine()
	tx := eng.Begin()
	for i := 0; i < n; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 97)), types.NewFloat(float64(i))}
		if err := tx.Insert("big", row); err != nil {
			t.Fatal(err)
		}
		if (i+1)%5000 == 0 {
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			tx = eng.Begin()
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Merge("big"); err != nil {
		t.Fatal(err)
	}
}

func TestRowsCloseMidStreamReleasesScan(t *testing.T) {
	d := openTest(t, Options{})
	loadBig(t, d, 30_000)
	rows, err := d.Query(context.Background(), `SELECT id, val FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	// Read one batch, then abandon the cursor.
	if _, err := rows.NextBatch(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed cursor serves nothing, even with unread rows buffered.
	if rows.Next() {
		t.Fatal("Next returned true after Close")
	}
	// The scan's storage latch must be released: a merge (which takes
	// it exclusively) completes instead of deadlocking.
	merged := make(chan error, 1)
	go func() {
		_, err := d.Engine().Merge("big")
		merged <- err
	}()
	select {
	case err := <-merged:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("merge blocked after mid-stream Rows.Close: scan latch leaked")
	}
}

func TestQueryCtxCancelParallelScan(t *testing.T) {
	d := openTest(t, Options{Parallelism: 4})
	loadBig(t, d, 60_000)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := d.Query(ctx, `SELECT id, grp, val FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.NextBatch(); err != nil {
		t.Fatal(err)
	}
	cancel()
	// Within one batch boundary the cursor surfaces context.Canceled.
	sawErr := false
	for i := 0; i < 3; i++ {
		if _, err := rows.NextBatch(); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("cancellation not observed within a batch boundary")
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("rows.Err() = %v", rows.Err())
	}
	rows.Close()

	// All morsel workers and the scan producer must exit.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked after cancel: before=%d now=%d", before, runtime.NumGoroutine())
}

func TestCoerceTypeMismatchTypedError(t *testing.T) {
	d := openTest(t, Options{})
	mustExec(t, d, `CREATE TABLE t (a BIGINT, b DOUBLE, PRIMARY KEY (a))`)
	// String literal into a BIGINT column: typed error, not a bogus row.
	_, err := d.Exec(context.Background(), `INSERT INTO t VALUES ('oops', 1.0)`)
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("INSERT: want ErrTypeMismatch, got %v", err)
	}
	// Same through UPDATE SET.
	mustExec(t, d, `INSERT INTO t VALUES (1, 1.0)`)
	_, err = d.Exec(context.Background(), `UPDATE t SET b = 'nope' WHERE a = 1`)
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("UPDATE: want ErrTypeMismatch, got %v", err)
	}
	// Numeric cross-assignment still coerces.
	mustExec(t, d, `INSERT INTO t VALUES (2, 3)`) // int literal into DOUBLE
	var b float64
	if err := d.QueryRow(context.Background(), `SELECT b FROM t WHERE a = 2`).Scan(&b); err != nil {
		t.Fatal(err)
	}
	if b != 3.0 {
		t.Fatalf("b = %v", b)
	}
}

func TestCloseIdempotentWithAutoMerge(t *testing.T) {
	d, err := Open(Options{AutoMergeEvery: time.Millisecond, MergeThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, `CREATE TABLE t (a BIGINT, PRIMARY KEY (a))`)
	for i := 0; i < 10; i++ {
		mustExec(t, d, `INSERT INTO t VALUES (?)`, i)
	}
	time.Sleep(5 * time.Millisecond) // let the daemon run at least once
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := d.Exec(context.Background(), `SELECT 1`); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestParamRejectedWhereTypeIsBaked(t *testing.T) {
	// Output types of select items, GROUP BY keys, and aggregate
	// arguments are fixed at plan time; an unbound `?` there would
	// silently truncate a later float binding, so it must be rejected.
	d := openTest(t, Options{})
	setupItems(t, d)
	ctx := context.Background()
	for _, q := range []string{
		`SELECT ? FROM items`,
		`SELECT qty * ? FROM items`,
		`SELECT cat, COUNT(*) FROM items GROUP BY cat, ?`,
		`SELECT SUM(qty * ?) FROM items`,
	} {
		if _, err := d.Query(ctx, q, 1.5); err == nil {
			t.Errorf("%s: want plan-time rejection, got success", q)
		}
	}
	// In comparisons the float value is applied exactly, not truncated.
	var n int64
	if err := d.QueryRow(ctx, `SELECT COUNT(*) FROM items WHERE qty * ? > 30`, 1.5).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 { // 30*1.5, 40*1.5, 50*1.5 exceed 30; 20*1.5=30 does not
		t.Fatalf("float param comparison: n = %d", n)
	}
}

func TestQueryErrors(t *testing.T) {
	d := openTest(t, Options{})
	setupItems(t, d)
	ctx := context.Background()
	if _, err := d.Query(ctx, `INSERT INTO items VALUES (9, 'x', 1, 1.0)`); err == nil {
		t.Fatal("Query of INSERT should fail")
	}
	if _, err := d.Query(ctx, `SELECT nope FROM items`); err == nil {
		t.Fatal("unknown column should fail")
	}
	if _, err := d.Query(ctx, `SELECT id FROM items WHERE qty > ?`); err == nil {
		t.Fatal("missing argument should fail")
	}
	if _, err := d.Query(ctx, `SELECT id FROM items`, 1); err == nil {
		t.Fatal("extra argument should fail")
	}
	if err := d.QueryRow(ctx, `SELECT id FROM items WHERE id = 42`).Scan(new(int64)); !errors.Is(err, ErrNoRows) {
		t.Fatalf("want ErrNoRows, got %v", err)
	}
	// A SELECT through Exec is executed and discarded.
	if _, err := d.Exec(ctx, `SELECT COUNT(*) FROM items`); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedStmtInTx(t *testing.T) {
	d := openTest(t, Options{})
	mustExec(t, d, `CREATE TABLE ev (id BIGINT, v BIGINT, PRIMARY KEY (id))`)
	ctx := context.Background()
	ins, err := d.Prepare(ctx, `INSERT INTO ev VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := d.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	txIns := tx.Stmt(ins)
	for i := 0; i < 100; i++ {
		if _, err := txIns.Exec(ctx, i, i*i); err != nil {
			t.Fatal(err)
		}
	}
	// Uncommitted writes are invisible outside the transaction.
	var n int64
	if err := d.QueryRow(ctx, `SELECT COUNT(*) FROM ev`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("dirty read: %d", n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.QueryRow(ctx, `SELECT COUNT(*) FROM ev`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("count = %d", n)
	}
}
