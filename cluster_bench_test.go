package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/types"
)

// benchClusterIngest is the E8 body: concurrent client inserts against a
// cluster of the given size (replication 3, tablets = 2x nodes), then a
// scatter-gather scan.
func benchClusterIngest(b *testing.B, nodes int) {
	c, err := cluster.New(cluster.Config{
		Nodes:       nodes,
		Partitions:  2 * nodes,
		Replication: 3,
		Timeout:     20 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	schema := types.MustSchema([]types.Column{
		{Name: "id", Type: types.Int64},
		{Name: "v", Type: types.String},
	}, "id")
	if _, err := c.CreateTable("kv", schema); err != nil {
		b.Fatal(err)
	}
	clients := 4 * nodes
	b.ResetTimer()
	var next int64
	var mu sync.Mutex
	alloc := func(n int) int64 {
		mu.Lock()
		defer mu.Unlock()
		v := next
		next += int64(n)
		return v
	}
	var wg sync.WaitGroup
	perClient := (b.N + clients - 1) / clients
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := alloc(perClient)
			for i := 0; i < perClient; i++ {
				row := types.Row{types.NewInt(base + int64(i)), types.NewString("v")}
				if err := c.Insert("kv", row); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errs:
		b.Fatal(err)
	default:
	}
	b.ReportMetric(float64(clients*perClient)/b.Elapsed().Seconds(), "inserts/s")
	// Scatter-gather scan throughput.
	start := time.Now()
	n, err := c.Count("kv")
	if err != nil {
		b.Fatal(err)
	}
	if n < clients*perClient {
		b.Fatalf("scan saw %d rows, want >= %d", n, clients*perClient)
	}
	b.ReportMetric(float64(n)/time.Since(start).Seconds()/1e6, "scan-Mrows/s")
	_ = fmt.Sprint()
}
