package client

import (
	"errors"
	"testing"

	"repro/internal/types"
	"repro/internal/wire"
)

func TestToValueScanValueRoundTrip(t *testing.T) {
	cases := []any{nil, int(7), int64(-3), 3.5, "hello", true, false}
	for _, in := range cases {
		v, err := toValue(in)
		if err != nil {
			t.Fatalf("toValue(%v): %v", in, err)
		}
		var out any
		if err := scanValue(v, &out); err != nil {
			t.Fatalf("scanValue(%v): %v", in, err)
		}
		switch want := in.(type) {
		case nil:
			if out != nil {
				t.Errorf("nil round-tripped to %v", out)
			}
		case int:
			if out.(int64) != int64(want) {
				t.Errorf("%v round-tripped to %v", in, out)
			}
		default:
			if out != in {
				t.Errorf("%v round-tripped to %v", in, out)
			}
		}
	}
	if _, err := toValue(struct{}{}); err == nil {
		t.Error("toValue accepted a struct")
	}
}

func TestScanValueTypedDestinations(t *testing.T) {
	var i64 int64
	if err := scanValue(types.NewInt(9), &i64); err != nil || i64 != 9 {
		t.Errorf("int64 scan: %v, %d", err, i64)
	}
	var f float64
	if err := scanValue(types.NewFloat(2.5), &f); err != nil || f != 2.5 {
		t.Errorf("float scan: %v, %v", err, f)
	}
	var s string
	if err := scanValue(types.NewString("x"), &s); err != nil || s != "x" {
		t.Errorf("string scan: %v, %q", err, s)
	}
	var b bool
	if err := scanValue(types.NewBool(true), &b); err != nil || !b {
		t.Errorf("bool scan: %v, %v", err, b)
	}
	if err := scanValue(types.NewString("x"), &i64); err == nil {
		t.Error("string scanned into *int64")
	}
}

func TestErrorHelpers(t *testing.T) {
	busy := &ServerError{Code: wire.CodeBusy, Msg: "busy"}
	if !IsBusy(busy) || IsQueueTimeout(busy) || IsShutdown(busy) {
		t.Error("CodeBusy misclassified")
	}
	qt := &ServerError{Code: wire.CodeQueueTimeout, Msg: "late"}
	if !IsQueueTimeout(qt) || IsBusy(qt) {
		t.Error("CodeQueueTimeout misclassified")
	}
	sd := error(&ServerError{Code: wire.CodeShutdown, Msg: "bye"})
	if !IsShutdown(sd) {
		t.Error("CodeShutdown misclassified")
	}
	if IsBusy(errors.New("plain")) {
		t.Error("plain error classified as busy")
	}
}

func TestLaneString(t *testing.T) {
	if LaneOLTP.String() != "oltp" || LaneOLAP.String() != "olap" || LaneNone.String() != "none" {
		t.Error("lane strings wrong")
	}
}
