// Package client is the Go driver for oadbd, the network server in
// front of the oadms engine. It speaks the internal/wire protocol:
// length-prefixed binary frames, a Hello handshake, then strictly
// synchronous request/response.
//
// A Conn is one server session. It is NOT safe for concurrent use —
// open one Conn per worker goroutine, exactly like a database/sql
// driver connection. The protocol is synchronous, so at most one
// statement is in flight per Conn, and a Rows cursor must be drained or
// closed before the next request.
//
// Server-side errors arrive as *ServerError with a structured code:
// IsBusy recognizes admission-control load shedding (the statement did
// not run; retry with backoff), IsQueueTimeout recognizes a statement
// abandoned after overstaying its lane's queue bound.
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/types"
	"repro/internal/wire"
)

// ServerError is a structured error returned by the server.
type ServerError struct {
	Code uint16 // wire.Code* constant
	Msg  string
}

func (e *ServerError) Error() string { return e.Msg }

// IsBusy reports admission-control load shedding: the statement was
// rejected before executing because its lane's queue was full (or the
// connection limit was reached). Safe to retry with backoff.
func IsBusy(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == wire.CodeBusy
}

// IsQueueTimeout reports a statement abandoned unexecuted after waiting
// in its lane queue longer than the server's bound.
func IsQueueTimeout(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == wire.CodeQueueTimeout
}

// IsShutdown reports a server that is draining for shutdown.
func IsShutdown(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == wire.CodeShutdown
}

// ErrConnBusy is returned when a request is issued while a previous
// query's Rows is still open on the same Conn.
var ErrConnBusy = errors.New("client: previous query's Rows not closed")

// ErrConnBroken is returned once the connection is unusable (protocol
// desync, I/O failure, or a mid-stream server failure).
var ErrConnBroken = errors.New("client: connection is broken")

// Lane identifies which server lane executed a statement.
type Lane byte

// Lanes (mirroring the server's scheduler classes).
const (
	LaneOLTP Lane = Lane(wire.LaneOLTP)
	LaneOLAP Lane = Lane(wire.LaneOLAP)
	// LaneNone marks work that bypassed the scheduler (transaction
	// control, statement-handle bookkeeping).
	LaneNone Lane = Lane(wire.LaneNone)
)

func (l Lane) String() string {
	switch l {
	case LaneOLTP:
		return "oltp"
	case LaneOLAP:
		return "olap"
	default:
		return "none"
	}
}

// Result reports what a statement did, including the server-side lane
// accounting that the mixed-workload benchmark keys on.
type Result struct {
	// RowsAffected counts written rows (Exec) or streamed rows (Query).
	RowsAffected uint64
	// Lane is the lane the statement executed on.
	Lane Lane
	// QueueWait is how long the statement waited for admission.
	QueueWait time.Duration
	// ExecTime is the server-side execution time.
	ExecTime time.Duration
}

// Conn is one client session. Not safe for concurrent use.
type Conn struct {
	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	enc       wire.Enc
	sessionID uint64
	maxFrame  int
	broken    bool
	pending   *Rows // open query cursor, if any
}

// Dial connects to an oadbd server and performs the handshake. ctx
// bounds connection establishment and the handshake only.
func Dial(ctx context.Context, addr string) (*Conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		conn:     nc,
		br:       bufio.NewReaderSize(nc, 8<<10),
		bw:       bufio.NewWriterSize(nc, 32<<10),
		maxFrame: wire.DefaultMaxFrame,
	}
	if dl, ok := ctx.Deadline(); ok {
		if err := nc.SetDeadline(dl); err != nil {
			nc.Close()
			return nil, err
		}
	}
	c.enc.Reset()
	c.enc.U32(wire.Magic)
	c.enc.U16(wire.Version)
	if err := c.send(wire.FrameHello); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(c.br, c.maxFrame)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch typ {
	case wire.FrameHelloOK:
		d := wire.NewDec(payload)
		_ = d.U16() // server protocol version (== ours, or it would have errored)
		c.sessionID = d.U64()
		if d.Err() != nil {
			nc.Close()
			return nil, fmt.Errorf("client: handshake: %w", d.Err())
		}
	case wire.FrameError:
		se := decodeError(payload)
		nc.Close()
		return nil, se
	default:
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected frame %#x", typ)
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// SessionID returns the server-assigned session identifier.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// Close sends an orderly goodbye and closes the connection.
func (c *Conn) Close() error {
	if c.conn == nil {
		return nil
	}
	if !c.broken && c.pending == nil {
		c.enc.Reset()
		_ = c.send(wire.FrameTerminate) // best-effort
	}
	err := c.conn.Close()
	c.conn = nil
	c.broken = true
	return err
}

// Abort closes the connection abruptly: no Terminate frame, no drain.
// The server is expected to cancel in-flight work, roll back any open
// transaction, and free the session's statement handles.
func (c *Conn) Abort() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	c.broken = true
}

// Exec runs a statement that returns no rows (a SELECT is drained and
// counted). BEGIN/COMMIT/ROLLBACK run here too: the session's explicit
// transaction lives server-side.
func (c *Conn) Exec(sql string, args ...any) (Result, error) {
	if err := c.startRequest(); err != nil {
		return Result{}, err
	}
	if err := c.sendQuery(sql, args); err != nil {
		return Result{}, err
	}
	return c.readExecResponse()
}

// Query runs a SELECT and returns a streaming cursor. The caller must
// drain or Close it before issuing the next request on this Conn.
func (c *Conn) Query(sql string, args ...any) (*Rows, error) {
	if err := c.startRequest(); err != nil {
		return nil, err
	}
	if err := c.sendQuery(sql, args); err != nil {
		return nil, err
	}
	return c.readQueryResponse()
}

// Prepare registers a server-side prepared statement and returns its
// handle. The server compiles (or reuses) the plan once; Execute
// round-trips only the handle id and the arguments.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	if err := c.startRequest(); err != nil {
		return nil, err
	}
	c.enc.Reset()
	c.enc.Str(sql)
	if err := c.send(wire.FramePrepare); err != nil {
		return nil, err
	}
	typ, payload, err := c.read()
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.FramePrepareOK:
		d := wire.NewDec(payload)
		st := &Stmt{c: c, id: d.U32(), numParams: int(d.U16()), isQuery: d.U8() == 1}
		if d.Err() != nil {
			return nil, c.fail(d.Err())
		}
		return st, nil
	case wire.FrameError:
		return nil, decodeError(payload)
	default:
		return nil, c.fail(fmt.Errorf("client: unexpected frame %#x to Prepare", typ))
	}
}

// Stats fetches the server's metrics snapshot ("name value" lines).
func (c *Conn) Stats() (string, error) {
	if err := c.startRequest(); err != nil {
		return "", err
	}
	c.enc.Reset()
	if err := c.send(wire.FrameStats); err != nil {
		return "", err
	}
	typ, payload, err := c.read()
	if err != nil {
		return "", err
	}
	switch typ {
	case wire.FrameStatsText:
		d := wire.NewDec(payload)
		text := d.Str()
		if d.Err() != nil {
			return "", c.fail(d.Err())
		}
		return text, nil
	case wire.FrameError:
		return "", decodeError(payload)
	default:
		return "", c.fail(fmt.Errorf("client: unexpected frame %#x to Stats", typ))
	}
}

// Stmt is a server-side prepared statement handle.
type Stmt struct {
	c         *Conn
	id        uint32
	numParams int
	isQuery   bool
	closed    bool
}

// NumParams returns the statement's `?` placeholder count.
func (s *Stmt) NumParams() int { return s.numParams }

// IsQuery reports whether the statement returns rows.
func (s *Stmt) IsQuery() bool { return s.isQuery }

// Exec runs the prepared statement with args (SELECTs are drained).
func (s *Stmt) Exec(args ...any) (Result, error) {
	if err := s.startExecute(args); err != nil {
		return Result{}, err
	}
	return s.c.readExecResponse()
}

// Query runs the prepared SELECT with args, returning a cursor.
func (s *Stmt) Query(args ...any) (*Rows, error) {
	if err := s.startExecute(args); err != nil {
		return nil, err
	}
	return s.c.readQueryResponse()
}

func (s *Stmt) startExecute(args []any) error {
	if s.closed {
		return errors.New("client: statement is closed")
	}
	if err := s.c.startRequest(); err != nil {
		return err
	}
	s.c.enc.Reset()
	s.c.enc.U32(s.id)
	if err := encodeArgs(&s.c.enc, args); err != nil {
		return err
	}
	return s.c.send(wire.FrameExecute)
}

// Close releases the server-side handle.
func (s *Stmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.c.startRequest(); err != nil {
		return err
	}
	s.c.enc.Reset()
	s.c.enc.U32(s.id)
	if err := s.c.send(wire.FrameCloseStmt); err != nil {
		return err
	}
	_, err := s.c.readExecResponse()
	return err
}

// Column describes one result column.
type Column struct {
	Name string
	Type string // engine type name (BIGINT, DOUBLE, VARCHAR, BOOLEAN)
}

// Rows is a streaming cursor over a query result. It must be drained or
// closed before the Conn accepts another request.
type Rows struct {
	c    *Conn
	cols []Column

	batch [][]types.Value
	idx   int

	done bool
	res  Result
	err  error
}

// Columns describes the result columns.
func (r *Rows) Columns() []Column { return r.cols }

// Next advances to the next row, fetching batches from the server as
// needed. It returns false at end of stream or on error (check Err).
func (r *Rows) Next() bool {
	if r.err != nil {
		return false
	}
	if r.idx+1 < len(r.batch) {
		r.idx++
		return true
	}
	r.batch, r.idx = nil, 0
	for !r.done {
		typ, payload, err := r.c.read()
		if err != nil {
			r.err = err
			r.finish()
			return false
		}
		switch typ {
		case wire.FrameRowBatch:
			batch, err := decodeBatch(payload, len(r.cols))
			if err != nil {
				r.err = r.c.fail(err)
				r.finish()
				return false
			}
			if len(batch) == 0 {
				continue
			}
			r.batch = batch
			return true
		case wire.FrameDone:
			r.res, r.err = decodeDone(payload)
			if r.err != nil {
				r.c.fail(r.err)
			}
			r.done = true
			r.finish()
			return false
		default:
			// The protocol forbids FrameError mid-stream, so anything
			// but a batch or Done means the stream is desynchronized.
			r.err = r.c.fail(fmt.Errorf("client: unexpected frame %#x in row stream", typ))
			r.finish()
			return false
		}
	}
	return false
}

// Scan copies the current row into dest pointers: *int64, *int,
// *float64, *string, *bool, or *any.
func (r *Rows) Scan(dest ...any) error {
	if r.batch == nil || r.idx >= len(r.batch) {
		return errors.New("client: Scan called without a successful Next")
	}
	row := r.batch[r.idx]
	if len(dest) != len(row) {
		return fmt.Errorf("client: Scan got %d destinations for %d columns", len(dest), len(row))
	}
	for i, v := range row {
		if err := scanValue(v, dest[i]); err != nil {
			return fmt.Errorf("client: column %d: %w", i, err)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// Result returns the statement's server-side accounting (valid after
// the cursor is drained or closed).
func (r *Rows) Result() Result { return r.res }

// Close drains any unread rows so the connection is ready for the next
// request, then returns the iteration error, if any.
func (r *Rows) Close() error {
	for !r.done && r.err == nil {
		if !r.Next() {
			break
		}
	}
	r.batch, r.idx = nil, 0
	r.finish()
	return r.err
}

// finish releases the connection for the next request.
func (r *Rows) finish() {
	if r.c.pending == r {
		r.c.pending = nil
	}
}

// --- connection internals ---

// startRequest checks the connection is idle and usable.
func (c *Conn) startRequest() error {
	if c.conn == nil || c.broken {
		return ErrConnBroken
	}
	if c.pending != nil {
		return ErrConnBusy
	}
	return nil
}

// send frames and flushes the encoder's payload.
func (c *Conn) send(typ byte) error {
	if err := wire.WriteFrame(c.bw, typ, c.enc.B); err != nil {
		return c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	return nil
}

// read fetches one frame, marking the connection broken on I/O failure.
func (c *Conn) read() (byte, []byte, error) {
	typ, payload, err := wire.ReadFrame(c.br, c.maxFrame)
	if err != nil {
		return 0, nil, c.fail(err)
	}
	return typ, payload, nil
}

// fail marks the connection broken and passes err through.
func (c *Conn) fail(err error) error {
	c.broken = true
	return err
}

func (c *Conn) sendQuery(sql string, args []any) error {
	c.enc.Reset()
	c.enc.Str(sql)
	if err := encodeArgs(&c.enc, args); err != nil {
		return err
	}
	return c.send(wire.FrameQuery)
}

// readExecResponse consumes a response where rows are not wanted: a
// row-returning response is drained and its count reported.
func (c *Conn) readExecResponse() (Result, error) {
	for {
		typ, payload, err := c.read()
		if err != nil {
			return Result{}, err
		}
		switch typ {
		case wire.FrameDone:
			res, err := decodeDone(payload)
			if err != nil {
				return Result{}, c.fail(err)
			}
			return res, nil
		case wire.FrameError:
			return Result{}, decodeError(payload)
		case wire.FrameRowHeader, wire.FrameRowBatch:
			continue // SELECT via Exec: drain to Done
		default:
			return Result{}, c.fail(fmt.Errorf("client: unexpected frame %#x to Exec", typ))
		}
	}
}

// readQueryResponse consumes the RowHeader (or error) and hands the
// stream to a Rows cursor.
func (c *Conn) readQueryResponse() (*Rows, error) {
	typ, payload, err := c.read()
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.FrameRowHeader:
		d := wire.NewDec(payload)
		n := int(d.U16())
		cols := make([]Column, n)
		for i := range cols {
			cols[i] = Column{Name: d.Str(), Type: types.Type(d.U8()).String()}
		}
		if d.Err() != nil {
			return nil, c.fail(d.Err())
		}
		r := &Rows{c: c, cols: cols}
		c.pending = r
		return r, nil
	case wire.FrameDone:
		// Non-query executed via Query: present an empty, finished cursor.
		res, err := decodeDone(payload)
		if err != nil {
			return nil, c.fail(err)
		}
		return &Rows{c: c, done: true, res: res}, nil
	case wire.FrameError:
		return nil, decodeError(payload)
	default:
		return nil, c.fail(fmt.Errorf("client: unexpected frame %#x to Query", typ))
	}
}

// --- codec helpers ---

func decodeError(payload []byte) error {
	d := wire.NewDec(payload)
	code, msg := d.U16(), d.Str()
	if d.Err() != nil {
		return fmt.Errorf("client: malformed error frame: %w", d.Err())
	}
	return &ServerError{Code: code, Msg: msg}
}

func decodeDone(payload []byte) (Result, error) {
	d := wire.NewDec(payload)
	res := Result{
		Lane:         Lane(d.U8()),
		RowsAffected: d.U64(),
		QueueWait:    time.Duration(d.U64()),
		ExecTime:     time.Duration(d.U64()),
	}
	return res, d.Err()
}

func decodeBatch(payload []byte, ncols int) ([][]types.Value, error) {
	d := wire.NewDec(payload)
	n := int(d.U32())
	rows := make([][]types.Value, 0, n)
	for i := 0; i < n; i++ {
		row := make([]types.Value, ncols)
		for c := range row {
			row[c] = d.Value()
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		rows = append(rows, row)
	}
	return rows, d.Err()
}

func encodeArgs(e *wire.Enc, args []any) error {
	e.U16(uint16(len(args)))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return fmt.Errorf("client: argument %d: %w", i+1, err)
		}
		e.Value(v)
	}
	return nil
}

func toValue(a any) (types.Value, error) {
	switch v := a.(type) {
	case nil:
		return types.Value{Null: true}, nil
	case int:
		return types.NewInt(int64(v)), nil
	case int32:
		return types.NewInt(int64(v)), nil
	case int64:
		return types.NewInt(v), nil
	case float32:
		return types.NewFloat(float64(v)), nil
	case float64:
		return types.NewFloat(v), nil
	case string:
		return types.NewString(v), nil
	case bool:
		return types.NewBool(v), nil
	case types.Value:
		return v, nil
	default:
		return types.Value{}, fmt.Errorf("unsupported type %T", a)
	}
}

func scanValue(v types.Value, dest any) error {
	switch d := dest.(type) {
	case *any:
		if v.Null {
			*d = nil
			return nil
		}
		switch v.Typ {
		case types.Int64:
			*d = v.I
		case types.Float64:
			*d = v.F
		case types.String:
			*d = v.S
		case types.Bool:
			*d = v.I != 0
		}
	case *int64:
		if v.Null {
			*d = 0
			return nil
		}
		switch v.Typ {
		case types.Int64, types.Bool:
			*d = v.I
		case types.Float64:
			*d = int64(v.F)
		default:
			return fmt.Errorf("cannot scan %s into *int64", v.Typ)
		}
	case *int:
		var x int64
		if err := scanValue(v, &x); err != nil {
			return fmt.Errorf("cannot scan %s into *int", v.Typ)
		}
		*d = int(x)
	case *float64:
		if v.Null {
			*d = 0
			return nil
		}
		switch v.Typ {
		case types.Float64:
			*d = v.F
		case types.Int64:
			*d = float64(v.I)
		default:
			return fmt.Errorf("cannot scan %s into *float64", v.Typ)
		}
	case *string:
		if v.Null {
			*d = ""
			return nil
		}
		if v.Typ != types.String {
			return fmt.Errorf("cannot scan %s into *string", v.Typ)
		}
		*d = v.S
	case *bool:
		if v.Null {
			*d = false
			return nil
		}
		if v.Typ != types.Bool {
			return fmt.Errorf("cannot scan %s into *bool", v.Typ)
		}
		*d = v.I != 0
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return nil
}
