// Social-retail analytics — the tutorial's second motivating workload
// (§1): retail event streams with social-media-driven interest surges,
// where the business value is detecting the surge *while it happens*.
// This example ingests a normal traffic phase, then a surge phase, and
// shows a trend query catching the surging product from live data. All
// SQL goes through the public db API: the trend query is a prepared
// statement rebound per window, and results stream through cursors.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/db"
	"repro/internal/bench"
)

func main() {
	ctx := context.Background()
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()
	engine := d.Engine()
	if _, err := engine.CreateTable("events", bench.RetailSchema()); err != nil {
		log.Fatal(err)
	}
	gen := bench.NewRetailGen(500, 7)

	ingest := func(n int, surging bool) {
		tx := engine.Begin()
		for i := 0; i < n; i++ {
			if err := tx.Insert("events", gen.Next(surging)); err != nil {
				log.Fatal(err)
			}
			if (i+1)%1000 == 0 {
				tx.Commit()
				tx = engine.Begin()
			}
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	// The trend query is prepared once; each window rebinds the event-id
	// cutoff (no re-parse, no re-plan).
	type trendRow struct {
		product string
		hits    int64
		revenue float64
	}
	trendStmt, err := d.Prepare(ctx, `
		SELECT product, COUNT(*) AS hits, SUM(amount) AS revenue
		FROM events
		WHERE event_id > ?
		GROUP BY product
		ORDER BY hits DESC
		LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	trending := func(sinceID int64) []trendRow {
		rows, err := trendStmt.Query(ctx, sinceID)
		if err != nil {
			log.Fatal(err)
		}
		defer rows.Close()
		var out []trendRow
		for rows.Next() {
			var tr trendRow
			if err := rows.Scan(&tr.product, &tr.hits, &tr.revenue); err != nil {
				log.Fatal(err)
			}
			out = append(out, tr)
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		return out
	}

	// Phase 1: baseline traffic.
	ingest(20_000, false)
	fmt.Println("top products during baseline traffic:")
	for _, tr := range trending(0) {
		fmt.Printf("  %-14s hits=%-5d revenue=%.2f\n", tr.product, tr.hits, tr.revenue)
	}

	// Merge the baseline into the column store (historical data at
	// rest), keeping the stream hot in the delta.
	if _, err := engine.Merge("events"); err != nil {
		log.Fatal(err)
	}
	var cutoff int64 = 20_000

	// Phase 2: a social surge hits one product.
	ingest(20_000, true)
	fmt.Printf("\ntop products during the surge window (events > %d):\n", cutoff)
	surge := trending(cutoff)
	for _, tr := range surge {
		fmt.Printf("  %-14s hits=%-5d revenue=%.2f\n", tr.product, tr.hits, tr.revenue)
	}
	fmt.Printf("\nground truth surging product: %s\n", gen.SurgeProduct)
	if len(surge) > 0 && surge[0].product == gen.SurgeProduct {
		fmt.Println("=> trend query detected the surge from live operational data")
	} else {
		fmt.Println("=> WARNING: surge not at rank 1 (try more events)")
	}

	// Conversion funnel on the surging product, spanning merged
	// (baseline) and hot (surge) data in one consistent snapshot.
	rows, err := d.Query(ctx, `
		SELECT action, COUNT(*) AS n
		FROM events
		WHERE product = ?
		GROUP BY action
		ORDER BY n DESC`, gen.SurgeProduct)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("\nconversion funnel for the surging product (all time):")
	for rows.Next() {
		var action string
		var n int64
		if err := rows.Scan(&action, &n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s %d\n", action, n)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
