// Social-retail analytics — the tutorial's second motivating workload
// (§1): retail event streams with social-media-driven interest surges,
// where the business value is detecting the surge *while it happens*.
// This example ingests a normal traffic phase, then a surge phase, and
// shows a trend query catching the surging product from live data.
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sql"
	"repro/internal/types"
)

func main() {
	engine, err := core.NewEngine(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	if _, err := engine.CreateTable("events", bench.RetailSchema()); err != nil {
		log.Fatal(err)
	}
	session := sql.NewSession(engine)
	gen := bench.NewRetailGen(500, 7)

	ingest := func(n int, surging bool) {
		tx := engine.Begin()
		for i := 0; i < n; i++ {
			if err := tx.Insert("events", gen.Next(surging)); err != nil {
				log.Fatal(err)
			}
			if (i+1)%1000 == 0 {
				tx.Commit()
				tx = engine.Begin()
			}
		}
		if _, err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	trending := func(sinceID int64) []types.Row {
		res, err := session.Exec(fmt.Sprintf(`
			SELECT product, COUNT(*) AS hits, SUM(amount) AS revenue
			FROM events
			WHERE event_id > %d
			GROUP BY product
			ORDER BY hits DESC
			LIMIT 5`, sinceID))
		if err != nil {
			log.Fatal(err)
		}
		return res.Rows
	}

	// Phase 1: baseline traffic.
	ingest(20_000, false)
	fmt.Println("top products during baseline traffic:")
	for _, row := range trending(0) {
		fmt.Printf("  %-14s hits=%-5s revenue=%.2f\n", row[0], row[1], row[2].F)
	}

	// Merge the baseline into the column store (historical data at
	// rest), keeping the stream hot in the delta.
	if _, err := engine.Merge("events"); err != nil {
		log.Fatal(err)
	}
	var cutoff int64 = 20_000

	// Phase 2: a social surge hits one product.
	ingest(20_000, true)
	fmt.Printf("\ntop products during the surge window (events > %d):\n", cutoff)
	rows := trending(cutoff)
	for _, row := range rows {
		fmt.Printf("  %-14s hits=%-5s revenue=%.2f\n", row[0], row[1], row[2].F)
	}
	fmt.Printf("\nground truth surging product: %s\n", gen.SurgeProduct)
	if len(rows) > 0 && rows[0][0].S == gen.SurgeProduct {
		fmt.Println("=> trend query detected the surge from live operational data")
	} else {
		fmt.Println("=> WARNING: surge not at rank 1 (try more events)")
	}

	// Conversion funnel on the surging product, spanning merged
	// (baseline) and hot (surge) data in one consistent snapshot.
	res, err := session.Exec(fmt.Sprintf(`
		SELECT action, COUNT(*) AS n
		FROM events
		WHERE product = '%s'
		GROUP BY action
		ORDER BY n DESC`, gen.SurgeProduct))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconversion funnel for the surging product (all time):")
	for _, row := range res.Rows {
		fmt.Printf("  %-5s %s\n", row[0], row[1])
	}
}
