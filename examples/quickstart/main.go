// Quickstart: create a dual-format table, write transactionally, query
// it with SQL, trigger a delta-merge, and confirm queries are unchanged
// while scans now run on compressed column segments.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sql"
)

func main() {
	// 1. Start an engine (MVCC snapshot isolation by default).
	engine, err := core.NewEngine(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	session := sql.NewSession(engine)

	exec := func(q string) *sql.Result {
		res, err := session.Exec(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}

	// 2. DDL + transactional writes.
	exec(`CREATE TABLE orders (id BIGINT, customer VARCHAR, region VARCHAR,
	      amount DOUBLE, PRIMARY KEY (id))`)
	exec(`INSERT INTO orders VALUES
	      (1, 'ada',   'EU', 120.0),
	      (2, 'bob',   'US',  80.0),
	      (3, 'carol', 'EU', 200.0),
	      (4, 'dave',  'US',  40.0),
	      (5, 'erin',  'APAC', 95.0)`)

	// Explicit transactions with rollback.
	exec(`BEGIN`)
	exec(`UPDATE orders SET amount = amount + 1000 WHERE region = 'EU'`)
	exec(`ROLLBACK`)

	// 3. Analytics over the freshly written data — no ETL, no lag.
	res := exec(`SELECT region, COUNT(*) AS n, SUM(amount) AS revenue
	             FROM orders GROUP BY region ORDER BY revenue DESC`)
	fmt.Println("revenue by region (delta/row store):")
	for _, row := range res.Rows {
		fmt.Printf("  %-5s n=%s revenue=%s\n", row[0], row[1], row[2])
	}

	// 4. Delta-merge: move rows into compressed column segments.
	mergeRes, err := engine.Merge("orders")
	if err != nil {
		log.Fatal(err)
	}
	tbl, _ := engine.Table("orders")
	fmt.Printf("\nmerged %d rows; column store now holds %d rows in %d segment(s), %d bytes encoded\n",
		mergeRes.Merged, tbl.ColdRows(), tbl.Cold().NumSegments(), tbl.Cold().SizeBytes())

	// 5. Same query, same answer — now served by the column store.
	res2 := exec(`SELECT region, COUNT(*) AS n, SUM(amount) AS revenue
	              FROM orders GROUP BY region ORDER BY revenue DESC`)
	fmt.Println("revenue by region (column store):")
	for _, row := range res2.Rows {
		fmt.Printf("  %-5s n=%s revenue=%s\n", row[0], row[1], row[2])
	}

	// 6. Writes keep flowing after the merge (dual format stays live).
	exec(`INSERT INTO orders VALUES (6, 'fred', 'EU', 70.0)`)
	exec(`DELETE FROM orders WHERE id = 4`)
	res3 := exec(`SELECT COUNT(*) FROM orders`)
	fmt.Printf("\nrows after post-merge writes: %s (expected 5)\n", res3.Rows[0][0])
}
