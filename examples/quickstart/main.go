// Quickstart for the public db API: open a database, write
// transactionally, query it with streaming and prepared statements,
// trigger a delta-merge, and confirm queries are unchanged while scans
// now run on compressed column segments.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/db"
)

func main() {
	ctx := context.Background()

	// 1. Open a database (MVCC snapshot isolation by default).
	d, err := db.Open(db.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()

	exec := func(q string, args ...any) {
		if _, err := d.Exec(ctx, q, args...); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}

	// 2. DDL + transactional writes.
	exec(`CREATE TABLE orders (id BIGINT, customer VARCHAR, region VARCHAR,
	      amount DOUBLE, PRIMARY KEY (id))`)
	exec(`INSERT INTO orders VALUES
	      (1, 'ada',   'EU', 120.0),
	      (2, 'bob',   'US',  80.0),
	      (3, 'carol', 'EU', 200.0),
	      (4, 'dave',  'US',  40.0),
	      (5, 'erin',  'APAC', 95.0)`)

	// Explicit transactions with rollback.
	tx, err := d.Begin(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec(ctx, `UPDATE orders SET amount = amount + 1000 WHERE region = ?`, "EU"); err != nil {
		log.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		log.Fatal(err)
	}

	// 3. Analytics over the freshly written data — no ETL, no lag. The
	// cursor streams; Scan gives row-at-a-time access.
	report := func(header string) {
		rows, err := d.Query(ctx, `SELECT region, COUNT(*) AS n, SUM(amount) AS revenue
		                           FROM orders GROUP BY region ORDER BY revenue DESC`)
		if err != nil {
			log.Fatal(err)
		}
		defer rows.Close()
		fmt.Println(header)
		for rows.Next() {
			var region string
			var n int64
			var revenue float64
			if err := rows.Scan(&region, &n, &revenue); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-5s n=%d revenue=%.1f\n", region, n, revenue)
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
	}
	report("revenue by region (delta/row store):")

	// 4. Delta-merge: move rows into compressed column segments.
	mergeRes, err := d.Engine().Merge("orders")
	if err != nil {
		log.Fatal(err)
	}
	tbl, _ := d.Engine().Table("orders")
	fmt.Printf("\nmerged %d rows; column store now holds %d rows in %d segment(s), %d bytes encoded\n",
		mergeRes.Merged, tbl.ColdRows(), tbl.Cold().NumSegments(), tbl.Cold().SizeBytes())

	// 5. Same query, same answer — now served by the column store.
	report("revenue by region (column store):")

	// 6. Prepared statements: parsed and planned once, rebound per
	// execution with `?` arguments.
	byRegion, err := d.Prepare(ctx, `SELECT COUNT(*) FROM orders WHERE region = ?`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\norder counts via one prepared plan:")
	for _, region := range []string{"EU", "US", "APAC"} {
		var n int64
		if err := byRegion.QueryRow(ctx, region).Scan(&n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s %d\n", region, n)
	}
	st := d.Stats()
	fmt.Printf("plan cache: %d hits, %d plans compiled\n", st.PlanCacheHits, st.PlansCompiled)

	// 7. Writes keep flowing after the merge (dual format stays live).
	exec(`INSERT INTO orders VALUES (?, ?, ?, ?)`, 6, "fred", "EU", 70.0)
	exec(`DELETE FROM orders WHERE id = ?`, 4)
	var n int64
	if err := d.QueryRow(ctx, `SELECT COUNT(*) FROM orders`).Scan(&n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrows after post-merge writes: %d (expected 5)\n", n)
}
