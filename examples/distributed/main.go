// Distributed deployment — scale-out in the style of Kudu and
// distributed Oracle DBIM (tutorial §3): a 4-server cluster with
// hash-partitioned tablets replicated 3x via Raft. The example ingests
// through tablet leaders, survives a server crash without losing
// committed rows, and runs scatter-gather scans.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/types"
)

func main() {
	c, err := cluster.New(cluster.Config{
		Nodes:       4,
		Partitions:  8,
		Replication: 3,
		Timeout:     10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	schema := types.MustSchema([]types.Column{
		{Name: "sensor_id", Type: types.Int64},
		{Name: "site", Type: types.String},
		{Name: "reading", Type: types.Float64},
	}, "sensor_id")
	if _, err := c.CreateTable("sensors", schema); err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster: 4 servers, 8 tablets, replication factor 3")

	// Parallel ingest through tablet leaders (each write is a Raft
	// commit: durable on a majority before acknowledging).
	sites := []string{"berlin", "tokyo", "austin", "oslo"}
	const total = 400
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < total; i += 4 {
				row := types.Row{
					types.NewInt(int64(i)),
					types.NewString(sites[i%len(sites)]),
					types.NewFloat(20 + float64(i%15)),
				}
				if err := c.Insert("sensors", row); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("ingested %d rows through Raft in %v\n", total, time.Since(start).Round(time.Millisecond))

	n, err := c.Count("sensors")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scatter-gather count: %d rows\n", n)

	// Crash a server: every tablet it hosted still has a majority.
	fmt.Println("\ncrash-stopping server 0 ...")
	c.StopServer(0)
	for i := total; i < total+50; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewString("recovery"), types.NewFloat(1)}
		if err := c.Insert("sensors", row); err != nil {
			log.Fatal(err)
		}
	}
	n, err = c.Count("sensors")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after failure: %d rows (writes kept flowing, nothing lost)\n", n)

	// Per-site aggregate via scatter-gather.
	counts := map[string]int{}
	if err := c.ScanAll("sensors", func(b *types.Batch) bool {
		for i := 0; i < b.Len(); i++ {
			counts[b.Row(i)[1].S]++
		}
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrows per site:")
	for _, s := range append(sites, "recovery") {
		fmt.Printf("  %-8s %d\n", s, counts[s])
	}

	// Bring the server back and keep going.
	c.RestartServer(0)
	if err := c.Insert("sensors", types.Row{types.NewInt(9999), types.NewString("healed"), types.NewFloat(0)}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver 0 restarted; cluster healthy")
}
