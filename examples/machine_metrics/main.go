// Machine-data analytics — the tutorial's first motivating workload
// (§1): a data center streams telemetry while operators run ad-hoc
// analytic queries over the data as it arrives. This example ingests a
// live metric stream with concurrent writers (bulk loading through the
// engine layer), runs real-time queries through the public db API
// against fresh data — with plan-cached prepared statements — and shows
// the delta-merge daemon keeping scans fast as volume accumulates.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/db"
	"repro/internal/bench"
)

func main() {
	ctx := context.Background()

	// AutoMergeEvery runs the delta-merge daemon, as a production
	// deployment would; Close stops and awaits it.
	d, err := db.Open(db.Options{MergeThreshold: 20000, AutoMergeEvery: 100 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			log.Printf("close: %v", err)
		}
	}()
	engine := d.Engine()
	if _, err := engine.CreateTable("metrics", bench.MetricsSchema()); err != nil {
		log.Fatal(err)
	}

	// 4 ingest workers streaming telemetry from 200 hosts through the
	// low-level engine API (the write-optimized path).
	const workers, perWorker = 4, 10_000
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := bench.NewMetricsGen(200, int64(w+1))
			tx := engine.Begin()
			for i := 0; i < perWorker; i++ {
				if err := tx.Insert("metrics", gen.Next()); err != nil {
					// Key collisions across generators are possible and
					// harmless (ts,host,metric); skip them.
					tx.Abort()
					tx = engine.Begin()
					continue
				}
				if (i+1)%500 == 0 {
					tx.Commit()
					tx = engine.Begin()
				}
			}
			tx.Commit()
		}(w)
	}

	// Meanwhile: real-time ad-hoc queries against in-flight data,
	// through the public API. Repeated texts hit the plan cache, and
	// results stream through cursors.
	type liveQuery struct {
		sql  string
		args []any
	}
	queries := []liveQuery{
		{sql: `SELECT metric, COUNT(*) AS n, AVG(value) AS avg_v, MAX(value) AS max_v
		       FROM metrics GROUP BY metric ORDER BY metric`},
		{sql: `SELECT host, COUNT(*) AS n FROM metrics GROUP BY host ORDER BY n DESC LIMIT 5`},
		{sql: `SELECT COUNT(*) FROM metrics WHERE metric = ? AND value > ?`, args: []any{"lat_p99", 30}},
	}
	for round := 1; round <= 3; round++ {
		time.Sleep(150 * time.Millisecond)
		fmt.Printf("--- live query round %d ---\n", round)
		for _, q := range queries {
			t0 := time.Now()
			rows, err := d.Query(ctx, q.sql, q.args...)
			if err != nil {
				log.Fatal(err)
			}
			n := 0
			for rows.Next() {
				n++
			}
			if err := rows.Err(); err != nil {
				log.Fatal(err)
			}
			rows.Close()
			fmt.Printf("  %3d rows in %8v   %.60s...\n", n, time.Since(t0).Round(time.Microsecond), q.sql)
		}
	}
	wg.Wait()

	tbl, _ := engine.Table("metrics")
	fmt.Printf("\ningested ~%d readings in %v\n", workers*perWorker, time.Since(start).Round(time.Millisecond))
	fmt.Printf("storage: %d rows in delta, %d rows in %d column segments (%d merges ran)\n",
		tbl.DeltaRows(), tbl.ColdRows(), tbl.Cold().NumSegments(), tbl.Merges())
	st := d.Stats()
	fmt.Printf("plan cache: %d hits, %d misses, %d plans compiled\n",
		st.PlanCacheHits, st.PlanCacheMisses, st.PlansCompiled)

	// Final analytic pass over everything, with a hot-host drill-down.
	rows, err := d.Query(ctx, `
		SELECT host, AVG(value) AS avg_cpu
		FROM metrics
		WHERE metric = ?
		GROUP BY host
		ORDER BY avg_cpu DESC
		LIMIT 3`, "cpu")
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("\nhottest hosts by average cpu:")
	for rows.Next() {
		var host string
		var avg float64
		if err := rows.Scan(&host, &avg); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  %.1f%%\n", host, avg)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
