// Machine-data analytics — the tutorial's first motivating workload
// (§1): a data center streams telemetry while operators run ad-hoc
// analytic queries over the data as it arrives. This example ingests a
// live metric stream with concurrent writers, runs real-time queries
// against fresh data, and shows the delta-merge keeping scans fast as
// volume accumulates.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/sql"
)

func main() {
	engine, err := core.NewEngine(core.Options{MergeThreshold: 20000})
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	if _, err := engine.CreateTable("metrics", bench.MetricsSchema()); err != nil {
		log.Fatal(err)
	}

	// Background merge daemon, as a production deployment would run.
	stop := make(chan struct{})
	engine.StartAutoMerge(100*time.Millisecond, stop)
	defer close(stop)

	// 4 ingest workers streaming telemetry from 200 hosts.
	const workers, perWorker = 4, 10_000
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen := bench.NewMetricsGen(200, int64(w+1))
			tx := engine.Begin()
			for i := 0; i < perWorker; i++ {
				if err := tx.Insert("metrics", gen.Next()); err != nil {
					// Key collisions across generators are possible and
					// harmless (ts,host,metric); skip them.
					tx.Abort()
					tx = engine.Begin()
					continue
				}
				if (i+1)%500 == 0 {
					tx.Commit()
					tx = engine.Begin()
				}
			}
			tx.Commit()
		}(w)
	}

	// Meanwhile: real-time ad-hoc queries against in-flight data.
	session := sql.NewSession(engine)
	queries := []string{
		`SELECT metric, COUNT(*) AS n, AVG(value) AS avg_v, MAX(value) AS max_v
		 FROM metrics GROUP BY metric ORDER BY metric`,
		`SELECT host, COUNT(*) AS n FROM metrics GROUP BY host ORDER BY n DESC LIMIT 5`,
		`SELECT COUNT(*) FROM metrics WHERE metric = 'lat_p99' AND value > 30`,
	}
	for round := 1; round <= 3; round++ {
		time.Sleep(150 * time.Millisecond)
		fmt.Printf("--- live query round %d ---\n", round)
		for _, q := range queries {
			t0 := time.Now()
			res, err := session.Exec(q)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %3d rows in %8v   %.60s...\n", len(res.Rows), time.Since(t0).Round(time.Microsecond), q)
		}
	}
	wg.Wait()

	tbl, _ := engine.Table("metrics")
	fmt.Printf("\ningested ~%d readings in %v\n", workers*perWorker, time.Since(start).Round(time.Millisecond))
	fmt.Printf("storage: %d rows in delta, %d rows in %d column segments (%d merges ran)\n",
		tbl.DeltaRows(), tbl.ColdRows(), tbl.Cold().NumSegments(), tbl.Merges())

	// Final analytic pass over everything, with a hot-host drill-down.
	res, err := session.Exec(`
		SELECT host, AVG(value) AS avg_cpu
		FROM metrics
		WHERE metric = 'cpu'
		GROUP BY host
		ORDER BY avg_cpu DESC
		LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhottest hosts by average cpu:")
	for _, row := range res.Rows {
		fmt.Printf("  %s  %.1f%%\n", row[0], row[1].F)
	}
}
